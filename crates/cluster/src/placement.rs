//! Deflation-aware VM placement (paper §5, "Bin-packing based VM
//! placement").
//!
//! A server's availability is `A_j = Free_j + Deflatable_j` (Eq. 4) and a
//! VM's fitness for it is the cosine similarity between the demand vector
//! and the availability vector. Three policies are implemented, as in the
//! paper's Fig. 8d: best-fit (highest fitness), first-fit (first server
//! that fits), and 2-choices (two random candidates, keep the fitter).
//!
//! Selection is two-tier: servers whose *free* resources already cover
//! the demand are strictly preferred (placing there disrupts nobody);
//! only when none exists does the reclaimable availability of the given
//! [`AvailabilityMode`] come into play. Both tiers run in a single fused
//! scan — each server's free vector is computed once and reused to derive
//! its availability, instead of the former two full passes through a
//! `&dyn Fn` availability closure.
//!
//! [`choose_server_with`] is the naive O(servers) oracle; the
//! [`PlacementIndex`](crate::PlacementIndex) answers the same queries
//! sublinearly and is equivalence-checked against this implementation
//! (same tie-breaking, same RNG draws, same chosen server). The
//! pre-index two-pass implementation survives as
//! [`choose_server_baseline`], the baseline `bench_cluster` measures
//! speedups against; [`PlacementEngine`] selects between the three.

use deflate_core::ResourceVector;
use hypervisor::PhysicalServer;
use simkit::SimRng;

/// Which reclaimable resources count toward a server's availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AvailabilityMode {
    /// The paper's Eq. 4: `free + deflatable`.
    Deflation,
    /// A preemption-only manager: `free + preemptible` (low-priority VMs
    /// can be killed to make room).
    PreemptionOnly,
}

fn availability(server: &PhysicalServer, mode: AvailabilityMode) -> ResourceVector {
    avail_from_free(server, &server.free(), mode)
}

/// The mode's availability vector, derived from an already-computed free
/// vector so the free tier and the availability tier of one scan share a
/// single per-server `free()` evaluation.
#[inline]
pub(crate) fn avail_from_free(
    server: &PhysicalServer,
    free: &ResourceVector,
    mode: AvailabilityMode,
) -> ResourceVector {
    match mode {
        AvailabilityMode::Deflation => *free + server.deflatable(),
        AvailabilityMode::PreemptionOnly => *free + server.preemptible(),
    }
}

/// BestFit's ranking key for a candidate vector: (cosine fitness,
/// availability magnitude).
#[inline]
pub(crate) fn score(avail: &ResourceVector, demand: &ResourceVector) -> (f64, f64) {
    (avail.cosine_similarity(demand), avail.norm())
}

/// BestFit's exact comparison: cosine values within float fuzz are ties,
/// broken by availability magnitude. Not a total order (the fuzz makes it
/// intransitive), so the winner depends on scan order — every placement
/// path must evaluate candidates in ascending server index to agree.
#[inline]
pub(crate) fn better(new: (f64, f64), best: (f64, f64)) -> bool {
    if (new.0 - best.0).abs() < 1e-9 {
        new.1 > best.1 + 1e-9
    } else {
        new.0 > best.0
    }
}

/// Draws the 2-choices candidate pair: two *distinct* indices when
/// `n >= 2` (sampling the same server twice would silently degenerate to
/// one choice), the single index twice when `n == 1`. Always consumes
/// exactly two RNG draws for `n >= 2` so naive and indexed placement stay
/// on identical RNG streams.
///
/// # Panics
/// Panics when `n == 0`.
pub(crate) fn draw_pair(rng: &mut SimRng, n: usize) -> (usize, usize) {
    let a = rng.index(n);
    if n < 2 {
        return (a, a);
    }
    // Sample b uniformly from the n-1 indices != a.
    let mut b = rng.index(n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// Which implementation answers the manager's placement queries. All
/// three are equivalence-tested to pick the *same server* on the same
/// RNG stream; they differ only in how much work a query costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementEngine {
    /// The incrementally-maintained sublinear
    /// [`PlacementIndex`](crate::PlacementIndex) (the default).
    Indexed,
    /// [`choose_server_with`]: one fused O(servers) scan, no dyn
    /// dispatch. Kept behind this config knob as the equivalence oracle.
    NaiveScan,
    /// [`choose_server_baseline`]: the pre-index implementation (two
    /// full passes through a `&dyn Fn` availability closure, fitness
    /// recomputed per candidate), preserved as the benchmark baseline.
    BaselineScan,
}

/// A VM placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Highest cosine fitness among all servers that fit.
    BestFit,
    /// First server (by index) whose availability dominates the demand.
    FirstFit,
    /// Pick two random servers, use the fitter (power of two choices).
    TwoChoices,
}

impl PlacementPolicy {
    /// All policies, for sweeps.
    pub const ALL: [PlacementPolicy; 3] = [
        PlacementPolicy::BestFit,
        PlacementPolicy::FirstFit,
        PlacementPolicy::TwoChoices,
    ];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::BestFit => "best-fit",
            PlacementPolicy::FirstFit => "first-fit",
            PlacementPolicy::TwoChoices => "2-choices",
        }
    }
}

/// Fitness of placing `demand` on `server`: cosine similarity between the
/// demand and the availability vector (0 when the VM does not fit at all).
pub fn fitness(server: &PhysicalServer, demand: &ResourceVector) -> f64 {
    fitness_with(server, demand, AvailabilityMode::Deflation)
}

/// [`fitness`] under an explicit availability mode.
pub fn fitness_with(
    server: &PhysicalServer,
    demand: &ResourceVector,
    mode: AvailabilityMode,
) -> f64 {
    let avail = availability(server, mode);
    if !(server.placeable() && avail.dominates(demand)) {
        return 0.0;
    }
    avail.cosine_similarity(demand)
}

/// Picks a server for `demand` under `policy`; returns its index, or
/// `None` when no server fits even after full reclamation.
pub fn choose_server(
    policy: PlacementPolicy,
    servers: &[PhysicalServer],
    demand: &ResourceVector,
    rng: &mut SimRng,
) -> Option<usize> {
    choose_server_with(policy, servers, demand, AvailabilityMode::Deflation, rng)
}

/// [`choose_server`] under an explicit availability mode: the naive
/// full-scan oracle.
///
/// One fused pass evaluates both tiers. Per candidate the free vector is
/// computed once; the mode availability is derived from it only while the
/// free tier is still empty (a free-tier hit makes the availability tier
/// unreachable, so the work is skipped). Availability dispatch is static —
/// no per-candidate `dyn Fn`.
pub fn choose_server_with(
    policy: PlacementPolicy,
    servers: &[PhysicalServer],
    demand: &ResourceVector,
    mode: AvailabilityMode,
    rng: &mut SimRng,
) -> Option<usize> {
    match policy {
        PlacementPolicy::FirstFit => {
            let mut fallback = None;
            for (i, s) in servers.iter().enumerate() {
                if !s.placeable() {
                    continue;
                }
                let free = s.free();
                if free.dominates(demand) {
                    return Some(i);
                }
                if fallback.is_none() && avail_from_free(s, &free, mode).dominates(demand) {
                    fallback = Some(i);
                }
            }
            fallback
        }
        PlacementPolicy::BestFit => {
            let mut best_free: Option<(usize, (f64, f64))> = None;
            let mut best_avail: Option<(usize, (f64, f64))> = None;
            for (i, s) in servers.iter().enumerate() {
                if !s.placeable() {
                    continue;
                }
                let free = s.free();
                if free.dominates(demand) {
                    let sc = score(&free, demand);
                    if best_free.map_or(true, |(_, bs)| better(sc, bs)) {
                        best_free = Some((i, sc));
                    }
                } else if best_free.is_none() {
                    // The availability tier only matters while no server
                    // free-fits; once one does, stop deriving it.
                    let avail = avail_from_free(s, &free, mode);
                    if avail.dominates(demand) {
                        let sc = score(&avail, demand);
                        if best_avail.map_or(true, |(_, bs)| better(sc, bs)) {
                            best_avail = Some((i, sc));
                        }
                    }
                }
            }
            best_free.or(best_avail).map(|(i, _)| i)
        }
        PlacementPolicy::TwoChoices => {
            if servers.is_empty() {
                return None;
            }
            let (a, b) = draw_pair(rng, servers.len());
            let free_of = |i: usize| servers[i].free();
            let free_fits = |i: usize| servers[i].placeable() && free_of(i).dominates(demand);
            match (free_fits(a), free_fits(b)) {
                (true, true) => Some(
                    if score(&free_of(a), demand) >= score(&free_of(b), demand) {
                        a
                    } else {
                        b
                    },
                ),
                (true, false) => Some(a),
                (false, true) => Some(b),
                (false, false) => {
                    // Neither sampled candidate places without disruption.
                    // Keep the two-tier guarantee: any free-fitting server
                    // beats reclaiming from the sampled pair, and any
                    // availability-fitting server beats rejecting.
                    if let Some(i) = servers
                        .iter()
                        .position(|s| s.placeable() && s.free().dominates(demand))
                    {
                        return Some(i);
                    }
                    let avail_of = |i: usize| avail_from_free(&servers[i], &free_of(i), mode);
                    let avail_fits =
                        |i: usize| servers[i].placeable() && avail_of(i).dominates(demand);
                    match (avail_fits(a), avail_fits(b)) {
                        (true, true) => Some(
                            if score(&avail_of(a), demand) >= score(&avail_of(b), demand) {
                                a
                            } else {
                                b
                            },
                        ),
                        (true, false) => Some(a),
                        (false, true) => Some(b),
                        (false, false) => servers.iter().position(|s| {
                            s.placeable() && avail_from_free(s, &s.free(), mode).dominates(demand)
                        }),
                    }
                }
            }
        }
    }
}

/// The placement implementation this PR's index replaced, preserved as
/// the benchmark baseline (and a second equivalence oracle): every query
/// runs up to two full O(servers) passes — a free pass, then an
/// availability pass — through a `&dyn Fn` availability closure, with
/// the availability vector rebuilt and the cosine fitness recomputed per
/// candidate. `bench_cluster`'s `naive` column runs this engine, so the
/// recorded speedups measure the index against the code it replaced.
///
/// The one departure from the pre-index code is the `TwoChoices`
/// distinct-pair bugfix, a semantics fix that must hold across every
/// engine for all three to stay choice-identical on one RNG stream;
/// `TwoChoices` therefore shares the fused implementation (its common
/// case was never a full scan, so nothing baseline-relevant is lost).
pub fn choose_server_baseline(
    policy: PlacementPolicy,
    servers: &[PhysicalServer],
    demand: &ResourceVector,
    mode: AvailabilityMode,
    rng: &mut SimRng,
) -> Option<usize> {
    if policy == PlacementPolicy::TwoChoices {
        return choose_server_with(policy, servers, demand, mode, rng);
    }
    let free_pass = baseline_pick(policy, servers, demand, &|s: &PhysicalServer| s.free());
    if free_pass.is_some() {
        return free_pass;
    }
    baseline_pick(policy, servers, demand, &|s: &PhysicalServer| {
        availability(s, mode)
    })
}

/// One full selection pass of the baseline scan: dyn-dispatched
/// availability, rebuilt once to test fit and again to score.
fn baseline_pick(
    policy: PlacementPolicy,
    servers: &[PhysicalServer],
    demand: &ResourceVector,
    avail: &dyn Fn(&PhysicalServer) -> ResourceVector,
) -> Option<usize> {
    let fits = |s: &PhysicalServer| s.placeable() && avail(s).dominates(demand);
    let sc = |s: &PhysicalServer| {
        let a = avail(s);
        (a.cosine_similarity(demand), a.norm())
    };
    match policy {
        PlacementPolicy::FirstFit => servers.iter().position(fits),
        PlacementPolicy::BestFit => {
            let mut best: Option<(usize, (f64, f64))> = None;
            for (i, s) in servers.iter().enumerate() {
                if !fits(s) {
                    continue;
                }
                let cand = sc(s);
                if best.map_or(true, |(_, bs)| better(cand, bs)) {
                    best = Some((i, cand));
                }
            }
            best.map(|(i, _)| i)
        }
        PlacementPolicy::TwoChoices => unreachable!("TwoChoices shares the fused scan"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::{ServerId, VmId};
    use hypervisor::{Vm, VmPriority};

    fn capacity() -> ResourceVector {
        ResourceVector::new(16.0, 65_536.0, 400.0, 400.0)
    }

    fn vm_spec() -> ResourceVector {
        ResourceVector::new(4.0, 16_384.0, 100.0, 100.0)
    }

    fn servers(n: u64) -> Vec<PhysicalServer> {
        (0..n)
            .map(|i| PhysicalServer::new(ServerId(i), capacity()))
            .collect()
    }

    #[test]
    fn first_fit_takes_first() {
        let mut ss = servers(3);
        // Fill server 0 with high-priority VMs: no availability.
        for i in 0..4 {
            ss[0].add_vm(Vm::new(VmId(100 + i), vm_spec(), VmPriority::High));
        }
        let mut rng = SimRng::seed_from_u64(1);
        let pick = choose_server(PlacementPolicy::FirstFit, &ss, &vm_spec(), &mut rng);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn best_fit_prefers_matching_direction() {
        let mut ss = servers(2);
        // Server 0 keeps full availability; server 1 loses most CPU to a
        // high-priority VM, so a CPU-heavy demand fits server 0 better.
        ss[1].add_vm(Vm::new(
            VmId(1),
            ResourceVector::new(14.0, 1_024.0, 0.0, 0.0),
            VmPriority::High,
        ));
        let demand = ResourceVector::new(8.0, 4_096.0, 10.0, 10.0);
        let mut rng = SimRng::seed_from_u64(1);
        let pick = choose_server(PlacementPolicy::BestFit, &ss, &demand, &mut rng);
        assert_eq!(pick, Some(0));
    }

    #[test]
    fn no_server_fits_returns_none() {
        let ss = servers(2);
        let demand = ResourceVector::new(64.0, 1_000_000.0, 1e6, 1e6);
        let mut rng = SimRng::seed_from_u64(1);
        for p in PlacementPolicy::ALL {
            assert_eq!(
                choose_server(p, &ss, &demand, &mut rng),
                None,
                "{}",
                p.name()
            );
        }
    }

    #[test]
    fn deflatable_resources_count_as_availability() {
        let mut ss = servers(1);
        // Fill with low-priority VMs: free is zero but deflatable is full.
        for i in 0..4 {
            ss[0].add_vm(Vm::new(VmId(i), vm_spec(), VmPriority::Low));
        }
        assert!(ss[0].free().is_zero());
        let mut rng = SimRng::seed_from_u64(1);
        let pick = choose_server(PlacementPolicy::BestFit, &ss, &vm_spec(), &mut rng);
        assert_eq!(pick, Some(0));
    }

    #[test]
    fn two_choices_always_finds_a_fit_when_one_exists() {
        let mut ss = servers(4);
        for s in ss.iter_mut().take(3) {
            for i in 0..4 {
                s.add_vm(Vm::new(VmId(i), vm_spec(), VmPriority::High));
            }
        }
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..50 {
            let pick = choose_server(PlacementPolicy::TwoChoices, &ss, &vm_spec(), &mut rng);
            assert_eq!(pick, Some(3));
        }
    }

    /// Regression: `TwoChoices` used to draw both candidates from the
    /// same range, so it could sample one server twice and silently
    /// degenerate to a single choice. With two servers — one strictly
    /// better — a genuine pair must compare both and take the better one
    /// on every draw.
    #[test]
    fn two_choices_samples_distinct_servers() {
        let mut ss = servers(2);
        // Server 0 is tight for a CPU-heavy demand; server 1 is empty and
        // scores strictly higher. A degenerate (0, 0) pair would return 0.
        ss[0].add_vm(Vm::new(
            VmId(1),
            ResourceVector::new(11.0, 1_024.0, 0.0, 0.0),
            VmPriority::High,
        ));
        let demand = ResourceVector::new(5.0, 4_096.0, 10.0, 10.0);
        assert!(ss[0].free().dominates(&demand), "both must free-fit");
        for seed in 0..100 {
            let mut rng = SimRng::seed_from_u64(seed);
            let pick = choose_server(PlacementPolicy::TwoChoices, &ss, &demand, &mut rng);
            assert_eq!(pick, Some(1), "seed {seed} degenerated to one choice");
        }
    }

    #[test]
    fn draw_pair_is_distinct_and_uniform_enough() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut seen = [0usize; 5];
        for _ in 0..1000 {
            let (a, b) = draw_pair(&mut rng, 5);
            assert_ne!(a, b);
            seen[a] += 1;
            seen[b] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 250, "index {i} drawn only {count}/2000 slots");
        }
        // n == 1 degenerates to the only index, twice.
        assert_eq!(draw_pair(&mut rng, 1), (0, 0));
    }

    #[test]
    fn fitness_zero_when_not_fitting() {
        let mut ss = servers(1);
        for i in 0..4 {
            ss[0].add_vm(Vm::new(VmId(i), vm_spec(), VmPriority::High));
        }
        assert_eq!(fitness(&ss[0], &vm_spec()), 0.0);
    }
}
