//! Metric recording for simulations: counters, time-weighted gauges,
//! time series, and histograms, plus CSV export for the figure harness.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::stats;
use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A gauge whose *time-weighted* average is what matters (e.g. cluster
/// utilization over a run).
#[derive(Debug, Clone)]
pub struct TimeWeightedGauge {
    current: f64,
    last_update: SimTime,
    weighted_sum: f64,
    observed: SimDuration,
    peak: f64,
}

impl TimeWeightedGauge {
    /// Creates a gauge with an initial value at `t0`.
    pub fn new(t0: SimTime, initial: f64) -> Self {
        TimeWeightedGauge {
            current: initial,
            last_update: t0,
            weighted_sum: 0.0,
            observed: SimDuration::ZERO,
            peak: initial,
        }
    }

    /// Sets the gauge to `value` at time `now`, accumulating the previous
    /// value over the elapsed interval.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_since(self.last_update);
        self.weighted_sum += self.current * dt.as_secs_f64();
        self.observed += dt;
        self.last_update = now;
        self.current = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adds `delta` to the gauge at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// The instantaneous value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The largest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[t0, now]`; call [`set`](Self::set) (or
    /// this with the final time via [`finalized_mean`](Self::finalized_mean))
    /// before reading.
    pub fn mean(&self) -> f64 {
        let secs = self.observed.as_secs_f64();
        if secs == 0.0 {
            self.current
        } else {
            self.weighted_sum / secs
        }
    }

    /// Accumulates up to `now` and returns the time-weighted average.
    pub fn finalized_mean(&mut self, now: SimTime) -> f64 {
        let v = self.current;
        self.set(now, v);
        self.mean()
    }
}

/// A recorded series of `(time, value)` samples.
#[derive(Debug, Default, Clone)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample (in debug builds).
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().map(|(pt, _)| *pt <= t).unwrap_or(true),
            "time series samples must be chronological"
        );
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Just the values.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, v)| *v).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Mean of the sampled values (unweighted).
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values())
    }

    /// Re-buckets the series into fixed windows, averaging samples in each
    /// window. Empty windows repeat the previous value (or 0 initially).
    pub fn resample(&self, window: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!window.is_zero(), "resample window must be positive");
        let Some(&(first, _)) = self.points.first() else {
            return Vec::new();
        };
        let (last, _) = *self.points.last().expect("non-empty");
        let mut out = Vec::new();
        let mut t = first;
        let mut idx = 0;
        let mut prev = 0.0;
        while t <= last {
            let end = t + window;
            let mut sum = 0.0;
            let mut n = 0;
            while idx < self.points.len() && self.points[idx].0 < end {
                sum += self.points[idx].1;
                n += 1;
                idx += 1;
            }
            let v = if n > 0 { sum / n as f64 } else { prev };
            out.push((t, v));
            prev = v;
            t = end;
        }
        out
    }
}

/// A histogram of raw samples supporting quantiles and means.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of samples (0 if empty).
    pub fn mean(&self) -> f64 {
        stats::mean(&self.samples)
    }

    /// Interpolated quantile `q` in `[0, 1]` (0 if empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("histogram samples must not be NaN"));
            self.sorted = true;
        }
        stats::percentile_sorted(&self.samples, q)
    }

    /// Raw samples in insertion or sorted order (unspecified).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A named registry of time series, used by experiment harnesses to gather
/// all outputs of a run and export them as CSV.
#[derive(Debug, Default)]
pub struct MetricSet {
    series: BTreeMap<String, TimeSeries>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Appends a sample to the named series, creating it on first use.
    pub fn push(&mut self, name: &str, t: SimTime, v: f64) {
        self.series.entry(name.to_string()).or_default().push(t, v);
    }

    /// Looks up a series.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Renders every series as long-format CSV: `series,time_s,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,time_s,value\n");
        for (name, ts) in &self.series {
            for (t, v) in ts.points() {
                writeln!(out, "{},{:.6},{:.6}", name, t.as_secs_f64(), v)
                    .expect("writing to String cannot fail");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 0.0);
        g.set(SimTime::from_secs(10), 100.0); // 0 for 10s
        g.set(SimTime::from_secs(20), 0.0); // 100 for 10s
        assert!((g.mean() - 50.0).abs() < 1e-9);
        assert_eq!(g.peak(), 100.0);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn gauge_finalized_mean_extends_interval() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 10.0);
        let m = g.finalized_mean(SimTime::from_secs(4));
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_add_is_relative() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 1.0);
        g.add(SimTime::from_secs(1), 2.0);
        assert_eq!(g.current(), 3.0);
        g.add(SimTime::from_secs(2), -1.5);
        assert_eq!(g.current(), 1.5);
    }

    #[test]
    fn series_records_and_averages() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 2.0);
        ts.push(SimTime::from_secs(2), 4.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.last(), Some(4.0));
        assert!((ts.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn series_resample_fills_gaps() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(0), 3.0);
        ts.push(SimTime::from_secs(5), 10.0);
        let r = ts.resample(SimDuration::from_secs(1));
        assert_eq!(r.len(), 6);
        assert_eq!(r[0].1, 2.0); // Average of 1 and 3.
        assert_eq!(r[1].1, 2.0); // Gap repeats previous.
        assert_eq!(r[5].1, 10.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn metricset_csv() {
        let mut m = MetricSet::new();
        m.push("x", SimTime::from_secs(1), 1.5);
        m.push("x", SimTime::from_secs(2), 2.5);
        m.push("y", SimTime::ZERO, 0.0);
        let csv = m.to_csv();
        assert!(csv.starts_with("series,time_s,value\n"));
        assert!(csv.contains("x,1.000000,1.500000"));
        assert!(csv.contains("y,0.000000,0.000000"));
        assert_eq!(m.names(), vec!["x", "y"]);
        assert_eq!(m.get("x").map(|ts| ts.len()), Some(2));
    }
}
