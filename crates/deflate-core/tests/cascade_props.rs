//! Property-based tests of the cascade deflation controller: for *any*
//! layer behaviors (arbitrary partial compliance at the application and
//! OS layers), the controller's accounting must hold.

use deflate_core::{
    cascade, ApplicationAgent, CascadeConfig, GuestOs, HypervisorControl, ReclaimResult,
    ResourceKind, ResourceVector,
};
use proptest::prelude::*;
use simkit::{SimDuration, SimTime};

/// An application agent that relinquishes an arbitrary fraction of any
/// request.
struct FracAgent {
    frac: f64,
    latency_ms: u64,
}

impl ApplicationAgent for FracAgent {
    fn self_deflate(&mut self, _now: SimTime, target: &ResourceVector) -> ReclaimResult {
        ReclaimResult::new(
            target.scale(self.frac),
            SimDuration::from_millis(self.latency_ms),
        )
    }
    fn reinflate(&mut self, _now: SimTime, _a: &ResourceVector) {}
}

/// A guest OS with an arbitrary free pool and unplug success fraction.
struct FracOs {
    free: ResourceVector,
    success: f64,
    unplugged: ResourceVector,
    latency_ms: u64,
}

impl GuestOs for FracOs {
    fn unpluggable(&self) -> ResourceVector {
        self.free
    }
    fn try_unplug(
        &mut self,
        _now: SimTime,
        target: &ResourceVector,
        _budget: Option<SimDuration>,
    ) -> ReclaimResult {
        let got = target.scale(self.success);
        self.unplugged += got;
        self.free = self.free.saturating_sub(&got);
        ReclaimResult::new(got, SimDuration::from_millis(self.latency_ms))
    }
    fn hot_plug(&mut self, _now: SimTime, amount: &ResourceVector) -> ResourceVector {
        let give = amount.min(&self.unplugged);
        self.unplugged -= give;
        give
    }
}

/// A hypervisor that always reclaims in full.
struct FullHv {
    over: ResourceVector,
    latency_ms: u64,
}

impl HypervisorControl for FullHv {
    fn overcommit(
        &mut self,
        _now: SimTime,
        amount: &ResourceVector,
        _budget: Option<SimDuration>,
    ) -> ReclaimResult {
        self.over += *amount;
        ReclaimResult::new(*amount, SimDuration::from_millis(self.latency_ms))
    }
    fn release(&mut self, _now: SimTime, amount: &ResourceVector) -> ResourceVector {
        let give = amount.min(&self.over);
        self.over -= give;
        give
    }
    fn overcommitted(&self) -> ResourceVector {
        self.over
    }
}

fn arb_vector() -> impl Strategy<Value = ResourceVector> {
    (
        0.0f64..32.0,
        0.0f64..131_072.0,
        0.0f64..1_000.0,
        0.0f64..5_000.0,
    )
        .prop_map(|(c, m, d, n)| ResourceVector::new(c, m, d, n))
}

proptest! {
    /// Whatever the layers do, total = os + hv, shortfall = target −
    /// total, nothing exceeds the target, and latency sums the layers.
    #[test]
    fn cascade_accounting_holds(
        target in arb_vector(),
        free in arb_vector(),
        app_frac in 0.0f64..1.0,
        os_success in 0.0f64..1.0,
        app_ms in 0u64..2_000,
        os_ms in 0u64..2_000,
        hv_ms in 0u64..2_000,
    ) {
        let mut agent = FracAgent { frac: app_frac, latency_ms: app_ms };
        let mut os = FracOs {
            free,
            success: os_success,
            unplugged: ResourceVector::ZERO,
            latency_ms: os_ms,
        };
        let mut hv = FullHv { over: ResourceVector::ZERO, latency_ms: hv_ms };
        let out = cascade::deflate_vm(
            SimTime::ZERO,
            &target,
            Some(&mut agent),
            &mut os,
            &mut hv,
            &CascadeConfig::FULL,
        );

        // Per-layer reclaims never exceed the target.
        prop_assert!(target.scale(1.0 + 1e-9).dominates(&out.app.reclaimed));
        prop_assert!(target.scale(1.0 + 1e-9).dominates(&out.os.reclaimed));
        prop_assert!(target.scale(1.0 + 1e-9).dominates(&out.total_reclaimed));

        // total = os + hv (the app's relinquished resources flow through
        // the OS/hypervisor to actually leave the VM).
        let sum = out.os.reclaimed + out.hypervisor.reclaimed;
        prop_assert!(sum.approx_eq(&out.total_reclaimed, 1e-6));

        // shortfall + total = target.
        let back = out.total_reclaimed + out.shortfall;
        prop_assert!(back.approx_eq(&target, 1e-6));

        // With a full-compliance hypervisor, the target is always met.
        prop_assert!(out.met_target());

        // Latency is the sum of engaged layers' latencies.
        let max_ms = SimDuration::from_millis(app_ms + os_ms + hv_ms);
        prop_assert!(out.latency <= max_ms);
    }

    /// Reinflation after deflation returns exactly what was reclaimed,
    /// for any split between the OS and hypervisor layers.
    #[test]
    fn reinflate_inverts_deflate(
        target in arb_vector(),
        free in arb_vector(),
        os_success in 0.0f64..1.0,
    ) {
        let mut os = FracOs {
            free,
            success: os_success,
            unplugged: ResourceVector::ZERO,
            latency_ms: 1,
        };
        let mut hv = FullHv { over: ResourceVector::ZERO, latency_ms: 1 };
        let out = cascade::deflate_vm(
            SimTime::ZERO,
            &target,
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::VM_LEVEL,
        );
        prop_assert!(out.met_target());

        let got = cascade::reinflate_vm(SimTime::ZERO, &target, None, &mut os, &mut hv);
        prop_assert!(got.approx_eq(&target, 1e-6), "got {} want {}", got, target);
        prop_assert!(hv.overcommitted().is_zero());
        for k in ResourceKind::ALL {
            prop_assert!(os.unplugged.get(k) < 1e-6);
        }
    }

    /// Disabling layers can only shift work downward, never change the
    /// total under a full-compliance hypervisor.
    #[test]
    fn layer_config_shifts_but_conserves(
        target in arb_vector(),
        free in arb_vector(),
    ) {
        for cfg in [CascadeConfig::HYPERVISOR_ONLY, CascadeConfig::VM_LEVEL] {
            let mut os = FracOs {
                free,
                success: 1.0,
                unplugged: ResourceVector::ZERO,
                latency_ms: 1,
            };
            let mut hv = FullHv { over: ResourceVector::ZERO, latency_ms: 1 };
            let out = cascade::deflate_vm(
                SimTime::ZERO,
                &target,
                None,
                &mut os,
                &mut hv,
                &cfg,
            );
            prop_assert!(out.met_target());
            prop_assert!(out.total_reclaimed.approx_eq(&target, 1e-6));
        }
    }
}
