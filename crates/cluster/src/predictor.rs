//! Predictive resource management for deflatable VMs — the paper's
//! stated future work ("Incorporating predictive resource management
//! \[26\] for deflatable VMs is part of our future work", §7).
//!
//! The idea, after Resource Central: forecast near-term high-priority
//! demand and keep that much *free headroom* on the cluster by holding
//! back reinflation of low-priority VMs. High-priority arrivals then
//! place into free resources instead of waiting out a synchronous
//! deflation, cutting their allocation latency — at the cost of keeping
//! low-priority VMs slightly deflated for longer.
//!
//! The forecast is an exponentially-weighted moving average of the
//! high-priority CPU demand that arrived in each fixed window.

use simkit::{SimDuration, SimTime};

/// An exponentially-weighted moving average.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`
    /// (larger = more reactive).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must lie in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Folds in an observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// The current forecast (0 before any observation).
    pub fn predict(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

/// Windows high-priority demand and forecasts the next window's total.
#[derive(Debug)]
pub struct DemandPredictor {
    window: SimDuration,
    ewma: Ewma,
    current_window: u64,
    accumulating: f64,
}

impl DemandPredictor {
    /// Creates a predictor with the given window and smoothing factor.
    pub fn new(window: SimDuration, alpha: f64) -> Self {
        assert!(!window.is_zero(), "prediction window must be positive");
        DemandPredictor {
            window,
            ewma: Ewma::new(alpha),
            current_window: 0,
            accumulating: 0.0,
        }
    }

    fn window_index(&self, now: SimTime) -> u64 {
        now.as_micros() / self.window.as_micros().max(1)
    }

    /// Rolls the accumulator forward to `now`, folding completed windows
    /// into the EWMA (empty windows count as zero demand).
    fn roll(&mut self, now: SimTime) {
        let idx = self.window_index(now);
        while self.current_window < idx {
            self.ewma.observe(self.accumulating);
            self.accumulating = 0.0;
            self.current_window += 1;
        }
    }

    /// Records `demand` (e.g. CPU cores requested by a high-priority
    /// arrival) at time `now`.
    pub fn observe(&mut self, now: SimTime, demand: f64) {
        self.roll(now);
        self.accumulating += demand.max(0.0);
    }

    /// Forecast of the next window's total demand.
    pub fn predict(&mut self, now: SimTime) -> f64 {
        self.roll(now);
        self.ewma.predict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_signal() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.predict(), 0.0);
        for _ in 0..50 {
            e.observe(10.0);
        }
        assert!((e.predict() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_tracks_level_shifts() {
        let mut e = Ewma::new(0.5);
        for _ in 0..10 {
            e.observe(4.0);
        }
        for _ in 0..10 {
            e.observe(20.0);
        }
        let p = e.predict();
        assert!(p > 15.0 && p <= 20.0, "p {p}");
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn predictor_windows_demand() {
        let w = SimDuration::from_mins(10);
        let mut p = DemandPredictor::new(w, 1.0); // alpha 1: last window.
                                                  // Window 0: 12 cores of demand.
        p.observe(SimTime::from_secs(60), 8.0);
        p.observe(SimTime::from_secs(300), 4.0);
        // Still window 0: forecast is from *completed* windows only.
        assert_eq!(p.predict(SimTime::from_secs(500)), 0.0);
        // Window 1: window 0 folds in.
        assert_eq!(p.predict(SimTime::from_secs(700)), 12.0);
    }

    #[test]
    fn empty_windows_decay_the_forecast() {
        let w = SimDuration::from_mins(10);
        let mut p = DemandPredictor::new(w, 0.5);
        p.observe(SimTime::from_secs(60), 16.0);
        // Four quiet windows later the forecast has decayed.
        let later = SimTime::from_secs(60 * 50);
        let f = p.predict(later);
        assert!(f < 16.0 * 0.2, "forecast {f}");
    }

    #[test]
    fn predictor_stable_under_steady_load() {
        let w = SimDuration::from_mins(10);
        let mut p = DemandPredictor::new(w, 0.3);
        for i in 0..60 {
            p.observe(SimTime::from_secs(i * 600 + 60), 6.0);
        }
        // Predict at the start of window 60: folds windows 0..=59.
        let f = p.predict(SimTime::from_secs(60 * 600 + 10));
        assert!((f - 6.0).abs() < 0.5, "forecast {f}");
    }
}
