//! The unified observability bundle: one [`MetricsRegistry`] plus one
//! [`TraceLog`], threaded through a simulation so every component records
//! into the same place, and exported as a single machine-readable run
//! summary at the end.
//!
//! ```
//! use simkit::{Observability, SimTime};
//!
//! let mut obs = Observability::new();
//! obs.metrics.incr("cluster.launched");
//! obs.trace.record(SimTime::ZERO, "launch", "vm-1");
//! let summary = obs.run_summary("example");
//! assert_eq!(
//!     summary.get("counters").and_then(|c| c.get("cluster.launched")).and_then(|v| v.as_f64()),
//!     Some(1.0)
//! );
//! ```

use crate::json::JsonValue;
use crate::metrics::MetricsRegistry;
use crate::time::SimTime;
use crate::trace::TraceLog;

/// Shared observability state for one run: named metrics and a trace.
#[derive(Debug, Default)]
pub struct Observability {
    /// Counters, gauges, and histograms by hierarchical key.
    pub metrics: MetricsRegistry,
    /// Lifecycle events and structured spans.
    pub trace: TraceLog,
}

impl Observability {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Observability::default()
    }

    /// Folds gauge history up to `now`; call once when the run ends.
    pub fn finalize(&mut self, now: SimTime) {
        self.metrics.finalize(now);
    }

    /// Builds the per-run summary: every metric plus trace record counts.
    ///
    /// The summary is intentionally aggregate — individual events and
    /// spans are available via [`TraceLog::to_json`] when a harness wants
    /// the full firehose.
    pub fn run_summary(&mut self, run: &str) -> JsonValue {
        let mut span_kinds = JsonValue::object();
        let mut kinds: Vec<&str> = self.trace.spans().iter().map(|s| s.kind.as_str()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        for kind in kinds {
            span_kinds.set(kind, self.trace.span_count(kind));
        }
        let trace = JsonValue::object()
            .with("records", self.trace.len())
            .with("dropped", self.trace.dropped())
            .with("spans", span_kinds);
        let metrics = self.metrics.to_json();
        let mut out = JsonValue::object().with("run", run);
        // Inline the metric sections so consumers address
        // `summary.counters.<key>` directly.
        for section in ["counters", "gauges", "histograms"] {
            if let Some(v) = metrics.get(section) {
                out.set(section, v.clone());
            }
        }
        out.with("trace", trace)
    }

    /// The run summary as pretty-printed JSON text.
    pub fn run_summary_text(&mut self, run: &str) -> String {
        self.run_summary(run).to_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Span;

    #[test]
    fn summary_aggregates_metrics_and_trace() {
        let mut obs = Observability::new();
        obs.metrics.incr("a");
        obs.metrics.gauge_set("g", SimTime::ZERO, 1.0);
        obs.metrics.observe("h", 3.0);
        obs.trace.record(SimTime::ZERO, "launch", "vm-1");
        obs.trace
            .record_span(Span::new("cascade.deflate", SimTime::ZERO));
        obs.trace
            .record_span(Span::new("cascade.deflate", SimTime::ZERO));
        obs.finalize(SimTime::from_secs(10));

        let doc = obs.run_summary("unit");
        assert_eq!(doc.get("run").and_then(JsonValue::as_str), Some("unit"));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("a"))
                .and_then(JsonValue::as_f64),
            Some(1.0)
        );
        let trace = doc.get("trace").unwrap();
        assert_eq!(trace.get("records").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(
            trace
                .get("spans")
                .and_then(|s| s.get("cascade.deflate"))
                .and_then(JsonValue::as_f64),
            Some(2.0)
        );
        // Text form parses back.
        let text = obs.run_summary_text("unit");
        assert!(JsonValue::parse(&text).is_ok());
    }
}
