//! Regenerates paper Figs. 5a–5d.
fn main() {
    bench::print_run("fig5", bench::figs::fig5::run);
}
