//! Spark execution substrate and the cascade deflation policy for Spark
//! (paper §4.1).
//!
//! The paper uses Spark as the representative data-parallel framework and
//! builds a *model-driven, online* self-deflation policy into the Spark
//! master: when the cluster manager deflates the VMs of a Spark
//! application, the master estimates the running time under
//!
//! * **VM-level deflation** — tasks on deflated VMs become stragglers and,
//!   because stages are bulk-synchronous, the whole job is gated by the
//!   most-deflated VM: `T_vm = T·[c + (1−c)/(1−max d)]` (Eq. 1);
//! * **self-deflation** — the master kills tasks and blacklists executors,
//!   which rebalances load (slowdown follows the *mean* deflation) but
//!   loses RDD partitions that must be recursively recomputed:
//!   `T_self = T·[c + (r·c + 1−c)/(1−mean d)]` (Eq. 3), with the
//!   recomputation fraction `r` estimated as the job's synchronous-time
//!   share (and forced to 1 when a shuffle is imminent);
//!
//! and picks whichever is smaller.
//!
//! This crate implements the substrate that policy needs, from scratch:
//!
//! * [`rdd`] — RDD lineage graphs with narrow/wide dependencies and
//!   caching;
//! * [`stage`] — the DAG scheduler's stage splitting (stages break at
//!   shuffle boundaries and at materialized/cached parents);
//! * [`exec`] — a bulk-synchronous execution simulator over a pool of
//!   (possibly deflated) worker VMs, with per-partition location tracking
//!   and recursive lineage-based recomputation of lost partitions;
//! * [`policy`] — Eqs. 1–3 and the mechanism-selection logic;
//! * [`training`] — synchronous data-parallel DNN training (BigDL-style
//!   CNN/RNN), where any task loss stalls the whole job and forces a
//!   restart from the last model checkpoint;
//! * [`workloads`] — the paper's four Spark workloads (Table 2): ALS,
//!   K-means, CNN and RNN training.

pub mod exec;
pub mod policy;
pub mod rdd;
pub mod stage;
pub mod training;
pub mod workloads;

pub use exec::{BspSimulator, DeflationEvent, DeflationMode, RunResult, WorkerPool};
pub use policy::{
    choose_mechanism, choose_mechanism_with_r, DeflationDecision, PolicyInputs, REstimateKind,
};
pub use rdd::{DagBuilder, DepKind, Rdd, RddId};
pub use stage::{build_stages, Stage, StageId};
pub use training::{TrainingJob, TrainingParams, TrainingRun};
pub use workloads::{als, cnn, kmeans, pagerank, rnn, terasort, SparkWorkload};
