//! Error types for deflation operations.

use std::fmt;

use crate::resources::ResourceVector;

/// Errors raised by deflation policies and controllers.
#[derive(Debug, Clone, PartialEq)]
pub enum DeflateError {
    /// The requested reclamation exceeds what all deflatable VMs can give
    /// up (every VM already at its minimum size); the shortfall must be met
    /// by preempting VMs instead.
    InfeasibleTarget {
        /// How much of the demand cannot be met by deflation.
        shortfall: ResourceVector,
    },
    /// A VM referenced by a policy decision does not exist.
    UnknownVm(crate::ids::VmId),
    /// A server referenced by a policy decision does not exist.
    UnknownServer(crate::ids::ServerId),
    /// A VM's deflation agent has missed so many consecutive deadlines
    /// that the controller considers it dead; the cluster manager pivots
    /// the VM to hypervisor-only deflation instead of burning the
    /// deadline on every cascade.
    AgentUnresponsive {
        /// The VM whose agent went silent.
        vm: crate::ids::VmId,
        /// Consecutive deadlines missed when the VM was declared
        /// unresponsive.
        missed_deadlines: u32,
    },
    /// A cascade layer exhausted its retry budget without meeting its
    /// request.
    LayerFailed {
        /// The layer that failed ("app", "os", or "hypervisor").
        layer: &'static str,
        /// How many times the layer was asked before giving up.
        attempts: u32,
    },
}

impl fmt::Display for DeflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeflateError::InfeasibleTarget { shortfall } => {
                write!(f, "deflation target infeasible; shortfall {shortfall}")
            }
            DeflateError::UnknownVm(id) => write!(f, "unknown VM {id}"),
            DeflateError::UnknownServer(id) => write!(f, "unknown server {id}"),
            DeflateError::AgentUnresponsive {
                vm,
                missed_deadlines,
            } => write!(
                f,
                "agent on {vm} unresponsive after {missed_deadlines} missed deadlines"
            ),
            DeflateError::LayerFailed { layer, attempts } => {
                write!(f, "cascade layer {layer} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DeflateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ServerId, VmId};

    #[test]
    fn display_messages() {
        let e = DeflateError::InfeasibleTarget {
            shortfall: ResourceVector::cpu(2.0),
        };
        assert!(e.to_string().contains("infeasible"));
        assert!(DeflateError::UnknownVm(VmId(1))
            .to_string()
            .contains("vm-1"));
        assert!(DeflateError::UnknownServer(ServerId(2))
            .to_string()
            .contains("server-2"));
    }

    #[test]
    fn failure_variants_carry_context() {
        let e = DeflateError::AgentUnresponsive {
            vm: VmId(7),
            missed_deadlines: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("vm-7"), "{msg}");
        assert!(msg.contains("3 missed deadlines"), "{msg}");

        let e = DeflateError::LayerFailed {
            layer: "os",
            attempts: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("layer os"), "{msg}");
        assert!(msg.contains("4 attempts"), "{msg}");
        // The variants are comparable for tests and dedup.
        assert_eq!(
            e,
            DeflateError::LayerFailed {
                layer: "os",
                attempts: 4
            }
        );
    }
}
