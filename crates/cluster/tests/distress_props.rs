//! Property tests for the distress loop: under random launch / exit /
//! usage-shock / distress-sample interleavings the PR-2 incremental
//! accounting stays exact at every step, the sampler's events agree with
//! the cluster stats, and a breaker-open VM's memory is never deflated
//! further — not by placement-driven reclamation and not by emergency
//! donation.
//!
//! The walk drives distress through the public API only: `set_usage`
//! shocks a guest's resident set past its visible memory (hard distress)
//! or back down (recovery), and `sample_distress` runs the
//! consequence/mitigation/guardrail loop the simulator runs on a timer.

use cluster::{
    ClusterManager, ClusterManagerConfig, DistressConfig, DistressEvent, LaunchOutcome,
    MigrationPolicy, VmRequest,
};
use deflate_core::{CascadeConfig, ResourceKind::Memory, ResourceVector, VmId};
use proptest::prelude::*;
use simkit::{SimDuration, SimRng, SimTime};

/// Memory-balanced server so deflation actually contends on memory
/// (the default mix is CPU-bound and never produces memory distress).
fn capacity() -> ResourceVector {
    ResourceVector::new(16.0, 32_768.0, 400.0, 800.0)
}

fn request(id: u64, scale: f64, low: bool) -> VmRequest {
    let spec = ResourceVector::new(4.0, 16_384.0, 100.0, 200.0).scale(scale);
    VmRequest {
        id: VmId(id),
        arrival: SimTime::ZERO,
        lifetime: SimDuration::from_hours(2),
        spec,
        type_name: "distress",
        low_priority: low,
        min_size: if low {
            spec.scale(0.15)
        } else {
            ResourceVector::ZERO
        },
    }
}

/// Effective memory of a running VM, wherever it lives.
fn eff_mem(m: &ClusterManager, id: VmId) -> Option<f64> {
    m.servers()
        .iter()
        .find_map(|s| s.vm(id).map(|v| v.effective().get(Memory)))
}

/// One randomized walk. Panics on any invariant violation; returns the
/// final run summary so determinism tests can compare whole runs.
fn walk(seed: u64, emergency: bool, floor: bool, long_grace: bool, migrate: bool) -> String {
    let distress = DistressConfig {
        enabled: true,
        emergency_reinflate: emergency,
        breaker_after: 2,
        breaker_cooldown: 2,
        working_set_floor: floor,
        floor_fraction: if floor { 0.9 } else { 0.0 },
        grace_window: if long_grace {
            SimDuration::from_hours(10)
        } else {
            SimDuration::from_secs(180)
        },
        ..DistressConfig::default()
    };
    let mut m = ClusterManager::new(ClusterManagerConfig {
        n_servers: 3,
        server_capacity: capacity(),
        cascade: CascadeConfig::FULL,
        distress,
        migration: if migrate {
            MigrationPolicy::enabled()
        } else {
            MigrationPolicy::none()
        },
        ..ClusterManagerConfig::default()
    });

    let mut rng = SimRng::seed_from_u64(seed);
    // (id, spec memory, low-priority)
    let mut live: Vec<(u64, f64, bool)> = Vec::new();
    // Copy windows still running: (vm, cut-over instant).
    let mut moving: Vec<(VmId, SimTime)> = Vec::new();
    let mut next_id = 0u64;
    let mut end = SimTime::ZERO;

    for step in 0..70u64 {
        let now = SimTime::from_secs(step * 90);
        end = now;

        // Cut over every migration whose copy window elapsed — the VM
        // may have exited or been killed in the meantime, driving both
        // the commit and the abort path through the oracle.
        moving.retain(|(vm, done_at)| {
            if now >= *done_at {
                m.finish_migration(now, *vm);
                false
            } else {
                true
            }
        });

        // Snapshot every breaker-open VM's memory before the operation:
        // whatever happens next, a still-running open VM must not lose
        // memory.
        let shielded: Vec<(VmId, f64)> = live
            .iter()
            .filter(|(id, _, _)| m.breaker_open(VmId(*id)))
            .filter_map(|(id, _, _)| eff_mem(&m, VmId(*id)).map(|mem| (VmId(*id), mem)))
            .collect();

        match rng.index(10) {
            // Launch (the main source of deflation pressure).
            0..=4 => {
                let scale = rng.uniform_range(0.25, 1.0);
                let low = rng.chance(0.8);
                if let LaunchOutcome::Placed { .. } = m.launch(now, &request(next_id, scale, low)) {
                    let spec_mem = 16_384.0 * scale;
                    live.push((next_id, spec_mem, low));
                }
                next_id += 1;
            }
            // Exit (the main source of reinflation).
            5 | 6 if !live.is_empty() => {
                let pick = rng.index(live.len());
                let (id, _, _) = live.swap_remove(pick);
                assert!(m.exit(now, VmId(id)).is_some());
            }
            // Usage shock: move a low-priority guest's resident set
            // anywhere in [0.3, 1.3] × spec — past 1.0 the guest is OOM.
            7 => {
                let lows: Vec<(u64, f64)> = live
                    .iter()
                    .filter(|(_, _, low)| *low)
                    .map(|(id, mem, _)| (*id, *mem))
                    .collect();
                if !lows.is_empty() {
                    let (id, spec_mem) = lows[rng.index(lows.len())];
                    let frac = rng.uniform_range(0.3, 1.3);
                    for s in m.servers() {
                        if let Some(vm) = s.vm(VmId(id)) {
                            vm.set_usage(spec_mem * frac, 1.0);
                        }
                    }
                }
            }
            // Distress sample: the events must agree with the stats, and
            // each event must describe a real state transition.
            _ => {
                let kills_before = m.stats().oom_kills;
                let events = m.sample_distress(now);
                let mut kills = 0u64;
                for ev in &events {
                    match *ev {
                        DistressEvent::OomKill { vm, .. } => {
                            kills += 1;
                            assert!(!m.is_running(vm), "{vm:?} still running after OOM kill");
                        }
                        DistressEvent::Slowdown { vm, perf } => {
                            assert!(m.is_running(vm), "{vm:?} slowed but not running");
                            assert!(
                                perf > 0.0 && perf < 1.0,
                                "slowdown perf {perf} out of (0, 1)"
                            );
                        }
                        DistressEvent::Migration { vm, total } => {
                            assert!(m.is_running(vm), "{vm:?} migrating but not running");
                            assert!(total > SimDuration::ZERO, "zero-length copy window");
                            moving.push((vm, now + total));
                        }
                    }
                }
                assert_eq!(
                    m.stats().oom_kills,
                    kills_before + kills,
                    "stats.oom_kills out of sync with OomKill events"
                );
            }
        }

        // Launches preempt and samples kill: drop whatever is gone.
        live.retain(|(id, _, _)| m.is_running(VmId(*id)));

        // The breaker shield: a VM whose breaker stayed open through the
        // step kept all of its memory. (A breaker can legitimately
        // *close* mid-step — a healthy sample ends the cool-down — and
        // the VM then re-enters the donor pool within the same sampling
        // round, so only still-open VMs are pinned.)
        for (id, before) in &shielded {
            if m.is_running(*id) && m.breaker_open(*id) {
                let after = eff_mem(&m, *id).expect("running VM has a server");
                assert!(
                    after >= before - 1e-6,
                    "breaker-open {id:?} lost memory: {before} -> {after}"
                );
            }
        }

        // The PR-2 oracle, at every step.
        m.assert_consistent();
    }

    m.run_summary(end, "distress_walk").to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleavings under every guardrail × migration
    /// combination keep the incremental totals exact, the migration
    /// ledger symmetric with the capacity holds, and the breaker shield
    /// airtight.
    #[test]
    fn invariants_survive_distress_interleavings(
        seed in any::<u64>(),
        mode in 0u8..16,
    ) {
        walk(seed, mode & 1 != 0, mode & 2 != 0, mode & 4 != 0, mode & 8 != 0);
    }
}

/// The walk is a deterministic function of its seed: same seed, same
/// summary, byte for byte — with and without migration.
#[test]
fn distress_walk_is_deterministic() {
    for seed in [1u64, 7, 42] {
        for migrate in [false, true] {
            let a = walk(seed, true, true, false, migrate);
            let b = walk(seed, true, true, false, migrate);
            assert_eq!(
                a, b,
                "seed {seed} migrate={migrate}: walk must be reproducible"
            );
        }
    }
}

/// Breaker opens and closes stay symmetric: a trip counts once, a close
/// counts once, and the open-VM gauge returns to zero (checked both via
/// the counters and by `assert_consistent`'s gauge-vs-map invariant).
#[test]
fn breaker_open_and_close_stay_symmetric() {
    let distress = DistressConfig {
        enabled: true,
        breaker_after: 2,
        breaker_cooldown: 1,
        grace_window: SimDuration::from_hours(10),
        floor_fraction: 0.0,
        ..DistressConfig::default()
    };
    let mut m = ClusterManager::new(ClusterManagerConfig {
        n_servers: 1,
        server_capacity: capacity(),
        cascade: CascadeConfig::FULL,
        distress,
        ..ClusterManagerConfig::default()
    });
    let a = VmId(0);
    assert!(matches!(
        m.launch(SimTime::ZERO, &request(0, 1.0, true)),
        LaunchOutcome::Placed { .. }
    ));

    // Two hard samples open the breaker.
    m.servers()[0].vm(a).unwrap().set_usage(17_000.0, 1.0);
    m.sample_distress(SimTime::from_secs(60));
    m.sample_distress(SimTime::from_secs(120));
    assert!(m.breaker_open(a));
    m.assert_consistent();

    // Recovery: one healthy sample (cooldown 1, first trip) closes it.
    m.servers()[0].vm(a).unwrap().set_usage(2_000.0, 1.0);
    m.sample_distress(SimTime::from_secs(180));
    assert!(!m.breaker_open(a), "healthy streak must close the breaker");
    m.assert_consistent();

    let metrics = &m.observability().metrics;
    assert_eq!(metrics.count("cluster.breaker_trips"), 1);
    assert_eq!(metrics.count("distress.breaker_closed"), 1);
}

/// Deterministic regression: the breaker actually opens through the
/// public API, and once open it shields the VM from placement-driven
/// deflation — the property the random walk asserts opportunistically.
#[test]
fn breaker_shields_distressed_vm_from_placement_pressure() {
    let distress = DistressConfig {
        enabled: true,
        breaker_after: 2,
        breaker_cooldown: 2,
        grace_window: SimDuration::from_hours(10),
        floor_fraction: 0.0,
        ..DistressConfig::default()
    };
    let mut m = ClusterManager::new(ClusterManagerConfig {
        n_servers: 1,
        server_capacity: capacity(),
        cascade: CascadeConfig::FULL,
        distress,
        ..ClusterManagerConfig::default()
    });
    let (a, b) = (VmId(0), VmId(1));
    assert!(matches!(
        m.launch(SimTime::ZERO, &request(0, 1.0, true)),
        LaunchOutcome::Placed { .. }
    ));
    assert!(matches!(
        m.launch(SimTime::ZERO, &request(1, 1.0, true)),
        LaunchOutcome::Placed { .. }
    ));

    // Shock VM 0 past its visible memory: hard distress, and after two
    // consecutive samples the breaker opens.
    m.servers()[0].vm(a).unwrap().set_usage(17_000.0, 1.0);
    m.sample_distress(SimTime::from_secs(60));
    m.sample_distress(SimTime::from_secs(120));
    assert!(
        m.breaker_open(a),
        "two distressed samples must open the breaker"
    );
    assert!(!m.breaker_open(b));

    // A high-priority arrival now needs 8 GB carved out of a full
    // server. All of it must come from VM 1: VM 0 is shielded.
    let before_a = eff_mem(&m, a).unwrap();
    let before_b = eff_mem(&m, b).unwrap();
    let hog = VmRequest {
        id: VmId(2),
        arrival: SimTime::from_secs(150),
        lifetime: SimDuration::from_hours(1),
        spec: ResourceVector::new(2.0, 8_000.0, 0.0, 0.0),
        type_name: "hog",
        low_priority: false,
        min_size: ResourceVector::ZERO,
    };
    assert!(matches!(
        m.launch(SimTime::from_secs(150), &hog),
        LaunchOutcome::Placed { .. }
    ));
    assert!(m.is_running(a), "shielded VM must not be preempted");
    let after_a = eff_mem(&m, a).unwrap();
    let after_b = eff_mem(&m, b).unwrap();
    assert!(
        (after_a - before_a).abs() < 1e-6,
        "breaker-open VM deflated: {before_a} -> {after_a}"
    );
    assert!(
        after_b < before_b - 1.0,
        "the unshielded donor must supply the memory: {before_b} -> {after_b}"
    );
    m.assert_consistent();
}
