//! A tiny JSON document model with a writer and parser.
//!
//! The workspace has no serialization dependency, and the observability
//! layer ([`crate::metrics::MetricsRegistry`], [`crate::trace::Span`])
//! needs machine-readable export plus round-trip tests. [`JsonValue`]
//! covers exactly that: build documents programmatically, render them
//! compactly or pretty-printed, and parse them back.
//!
//! Objects preserve insertion order so exported reports are stable and
//! diffable.

use std::fmt;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        let JsonValue::Obj(pairs) = self else {
            panic!("JsonValue::set on a non-object");
        };
        let value = value.into();
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            pairs.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                    items[i].write(out, ind);
                })
            }
            JsonValue::Obj(pairs) => {
                write_seq(out, indent, '{', '}', pairs.len(), |out, i, ind| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind);
                })
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Renders compact (no whitespace) JSON.
impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(items: Vec<T>) -> Self {
        JsonValue::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        write!(out, "{}", n as i64).expect("writing to String cannot fail");
    } else {
        write!(out, "{n}").expect("writing to String cannot fail");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                expected as char, self.pos
            ))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat_keyword("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b < 0x80)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("scanned ASCII region is valid UTF-8"),
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "dangling escape at end of input".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("unknown escape '\\{}'", c as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 character: copy it through.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number region is ASCII");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders_compact() {
        let doc = JsonValue::object()
            .with("name", "run-1")
            .with("ok", true)
            .with("count", 42u64)
            .with("ratio", 0.5)
            .with("items", vec![1u64, 2, 3]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"run-1","ok":true,"count":42,"ratio":0.5,"items":[1,2,3]}"#
        );
    }

    #[test]
    fn pretty_print_indents() {
        let doc = JsonValue::object().with("a", 1u64);
        assert_eq!(doc.to_pretty(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn escapes_strings() {
        let doc = JsonValue::Str("a\"b\\c\nd".into());
        assert_eq!(doc.to_string(), r#""a\"b\\c\nd""#);
        let back = JsonValue::parse(&doc.to_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_what_it_writes() {
        let doc = JsonValue::object()
            .with("nested", JsonValue::object().with("x", 1.25))
            .with("arr", vec![JsonValue::Null, JsonValue::Bool(false)])
            .with("neg", -3.0)
            .with("text", "héllo");
        let text = doc.to_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("nope").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let doc = JsonValue::parse(r#"{"a": {"b": [1, "two", true]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_str(), Some("two"));
        assert_eq!(items[2].as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_string(), "null");
    }
}
