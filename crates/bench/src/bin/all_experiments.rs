//! Runs the full evaluation suite (every figure plus the ablations) and
//! prints the markdown tables that back EXPERIMENTS.md, followed by the
//! machine-readable run summary. With an output directory as the first
//! argument, also writes one TSV per table for plotting and the run
//! summary as `run_summary.json`:
//!
//! ```text
//! cargo run --release -p bench --bin all_experiments -- results/
//! ```

use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let out_dir = std::env::args().nth(1);
    println!("# Resource Deflation — full experiment suite\n");
    let start = Instant::now();
    let tables = bench::figs::run_all();
    let wall = start.elapsed().as_secs_f64();
    for t in &tables {
        t.print();
        if let Some(dir) = &out_dir {
            let dir = Path::new(dir);
            if let Err(e) = fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
            let path = dir.join(format!("{}.tsv", t.id));
            if let Err(e) = fs::write(&path, t.to_tsv()) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    let summary = bench::run_summary("all_experiments", &tables, wall).to_pretty();
    println!("--- run summary (all_experiments) ---");
    println!("{summary}");
    if let Some(dir) = out_dir {
        let path = Path::new(&dir).join("run_summary.json");
        if let Err(e) = fs::write(&path, &summary) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("TSV series and run_summary.json written to {dir}");
    }
}
