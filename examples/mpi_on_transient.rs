//! Inelastic legacy applications on transient resources: why deflation
//! widens the class of workloads that can use cheap transient VMs.
//!
//! A 6-hour synchronous MPI job (no checkpointing, fixed rank count)
//! cannot realistically finish on preemptible VMs — each revocation
//! restarts it from scratch, so its expected running time grows
//! exponentially in job-length/MTTF. On deflatable VMs it always
//! finishes, just slower while pressure lasts.
//!
//! ```text
//! cargo run -p bench --example mpi_on_transient
//! ```

use apps::{LbPolicy, MpiApp, MpiParams, WebCluster, WebServerApp, WebServerParams};
use deflate_core::{CascadeConfig, ResourceVector, VmId};
use hypervisor::{Vm, VmPriority};
use simkit::{SimDuration, SimTime};

fn main() {
    let spec = ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0);

    // --- MPI: expected completion time, preemptible vs deflatable. ---
    let mpi = MpiApp::new(MpiParams::default());
    println!("6-hour synchronous MPI job (16 ranks, no checkpoints):\n");
    println!("{:>12} {:>26}", "MTTF", "E[time] on preemptible VMs");
    for mttf_h in [24u64, 12, 6, 3] {
        let t = mpi.expected_runtime_preemptible(SimDuration::from_hours(mttf_h));
        println!("{:>10} h {:>24.1} h", mttf_h, t.as_secs_f64() / 3_600.0);
    }

    let mut vm = Vm::new(VmId(1), spec, VmPriority::Low);
    mpi.init_usage(&vm.state());
    for frac in [0.25, 0.5] {
        let mut vm2 = Vm::new(VmId(2), spec, VmPriority::Low);
        mpi.init_usage(&vm2.state());
        let _ = vm2.deflate(
            SimTime::ZERO,
            &ResourceVector::cpu(4.0 * frac),
            &CascadeConfig::VM_LEVEL,
        );
        println!(
            "deflated {:>3.0}% for the whole run: {:>13.1} h  (always finishes)",
            frac * 100.0,
            mpi.runtime_deflated(&vm2.view()).as_secs_f64() / 3_600.0
        );
    }
    let _ = vm.deflate(SimTime::ZERO, &ResourceVector::ZERO, &CascadeConfig::FULL);

    // --- Web cluster: deflation-aware load balancing (footnote 2). ---
    println!("\n4-member web cluster, member 0 deflated by 50%, 330 kreq/s offered:\n");
    for policy in [LbPolicy::Uniform, LbPolicy::DeflationAware] {
        let mut members = Vec::new();
        let mut views = Vec::new();
        for i in 0..4 {
            let app = WebServerApp::new(WebServerParams::default());
            let vm = Vm::new(VmId(10 + i), spec, VmPriority::Low);
            app.init_usage(&vm.state());
            let agent = app.agent(vm.state());
            let mut vm = vm.with_agent(Box::new(agent));
            if i == 0 {
                let _ = vm.deflate(SimTime::ZERO, &spec.scale(0.5), &CascadeConfig::FULL);
            }
            views.push(vm.view());
            members.push(app);
        }
        let cluster = WebCluster::new(members, policy);
        println!(
            "{:>16?}: serves {:.1} kreq/s",
            policy,
            cluster.served_kreq(330.0, &views)
        );
    }
    println!(
        "\nThe deflation-aware balancer \"serves less traffic from deflated\n\
         servers\" (paper §3.2.1) instead of letting the hotspot drop it."
    );
}
