//! Metric recording for simulations: counters, time-weighted gauges,
//! time series, and histograms, plus CSV export for the figure harness.
//!
//! For ad-hoc instrumentation the individual types can be held directly;
//! for end-to-end observability the [`MetricsRegistry`] addresses all
//! three kinds by hierarchical dotted key (`cluster.deflations`,
//! `cascade.os.latency_s`, ...) and exports a single machine-readable
//! snapshot as JSON or CSV.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::JsonValue;
use crate::stats;
use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A gauge whose *time-weighted* average is what matters (e.g. cluster
/// utilization over a run).
#[derive(Debug, Clone)]
pub struct TimeWeightedGauge {
    current: f64,
    last_update: SimTime,
    weighted_sum: f64,
    observed: SimDuration,
    peak: f64,
}

impl TimeWeightedGauge {
    /// Creates a gauge with an initial value at `t0`.
    pub fn new(t0: SimTime, initial: f64) -> Self {
        TimeWeightedGauge {
            current: initial,
            last_update: t0,
            weighted_sum: 0.0,
            observed: SimDuration::ZERO,
            peak: initial,
        }
    }

    /// Sets the gauge to `value` at time `now`, accumulating the previous
    /// value over the elapsed interval.
    ///
    /// Out-of-order updates (a `now` before the previous update) are safe:
    /// they contribute a zero-length interval and the gauge clock never
    /// runs backwards, so later intervals are not double-counted.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_since(self.last_update);
        self.weighted_sum += self.current * dt.as_secs_f64();
        self.observed += dt;
        if now > self.last_update {
            self.last_update = now;
        }
        self.current = value;
        if value > self.peak {
            self.peak = value;
        }
    }

    /// Adds `delta` to the gauge at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// The instantaneous value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The largest value ever set.
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Time-weighted average over `[t0, now]`; call [`set`](Self::set) (or
    /// this with the final time via [`finalized_mean`](Self::finalized_mean))
    /// before reading.
    pub fn mean(&self) -> f64 {
        let secs = self.observed.as_secs_f64();
        if secs == 0.0 {
            self.current
        } else {
            self.weighted_sum / secs
        }
    }

    /// Accumulates up to `now` and returns the time-weighted average.
    pub fn finalized_mean(&mut self, now: SimTime) -> f64 {
        let v = self.current;
        self.set(now, v);
        self.mean()
    }
}

/// A recorded series of `(time, value)` samples.
#[derive(Debug, Default, Clone)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous sample (in debug builds).
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().map(|(pt, _)| *pt <= t).unwrap_or(true),
            "time series samples must be chronological"
        );
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Just the values.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|(_, v)| *v).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Mean of the sampled values (unweighted).
    pub fn mean(&self) -> f64 {
        stats::mean(&self.values())
    }

    /// Re-buckets the series into fixed windows, averaging samples in each
    /// window. Empty windows repeat the previous value (or 0 initially).
    pub fn resample(&self, window: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!window.is_zero(), "resample window must be positive");
        let Some(&(first, _)) = self.points.first() else {
            return Vec::new();
        };
        let (last, _) = *self.points.last().expect("non-empty");
        let mut out = Vec::new();
        let mut t = first;
        let mut idx = 0;
        let mut prev = 0.0;
        while t <= last {
            let end = t + window;
            let mut sum = 0.0;
            let mut n = 0;
            while idx < self.points.len() && self.points[idx].0 < end {
                sum += self.points[idx].1;
                n += 1;
                idx += 1;
            }
            let v = if n > 0 { sum / n as f64 } else { prev };
            out.push((t, v));
            prev = v;
            t = end;
        }
        out
    }
}

/// A histogram of raw samples supporting quantiles and means.
#[derive(Debug, Default, Clone)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records a sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of samples (0 if empty).
    pub fn mean(&self) -> f64 {
        stats::mean(&self.samples)
    }

    /// Interpolated quantile `q` in `[0, 1]` (0 if empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        if !self.sorted {
            // total_cmp: a stray NaN observation must not panic a sweep.
            self.samples.sort_unstable_by(f64::total_cmp);
            self.sorted = true;
        }
        stats::percentile_sorted(&self.samples, q)
    }

    /// Raw samples in insertion or sorted order (unspecified).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A named registry of time series, used by experiment harnesses to gather
/// all outputs of a run and export them as CSV.
#[derive(Debug, Default)]
pub struct MetricSet {
    series: BTreeMap<String, TimeSeries>,
}

impl MetricSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Appends a sample to the named series, creating it on first use.
    pub fn push(&mut self, name: &str, t: SimTime, v: f64) {
        self.series.entry(name.to_string()).or_default().push(t, v);
    }

    /// Looks up a series.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names in sorted order.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Renders every series as long-format CSV: `series,time_s,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,time_s,value\n");
        for (name, ts) in &self.series {
            for (t, v) in ts.points() {
                writeln!(out, "{},{:.6},{:.6}", name, t.as_secs_f64(), v)
                    .expect("writing to String cannot fail");
            }
        }
        out
    }
}

/// A registry of counters, time-weighted gauges, and histograms addressed
/// by hierarchical dotted key.
///
/// Keys are free-form strings by convention structured as
/// `component.sub.metric`, e.g. `cluster.preempted`,
/// `cascade.hypervisor.latency_s`, `vm.hotplug.failed`. Metrics are
/// created lazily on first touch, so instrumentation sites never need
/// registration boilerplate.
///
/// # Export
///
/// [`to_json`](Self::to_json) renders one snapshot object with a section
/// per metric kind; histogram sections include count, mean, and the
/// p50/p90/p99 quantiles. [`to_csv`](Self::to_csv) renders the same
/// snapshot as long-format `kind,key,stat,value` rows.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, TimeWeightedGauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds one to the named counter (created at zero on first use).
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Adds `n` to the named counter (created on first *nonzero*
    /// contribution — a zero add is a no-op, so per-event sites can call
    /// this unconditionally without registering keys for activity that
    /// never happened).
    ///
    /// Hot path: instrumentation sites call this per simulation event, so
    /// the existing-key case must not allocate — `entry` would clone the
    /// key on every call just to (usually) throw it away.
    pub fn add(&mut self, key: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(c) = self.counters.get_mut(key) {
            c.add(n);
        } else {
            self.counters.entry(key.to_string()).or_default().add(n);
        }
    }

    /// Current value of a counter (zero when never touched).
    pub fn count(&self, key: &str) -> u64 {
        self.counters.get(key).map(Counter::get).unwrap_or(0)
    }

    /// Sets the named gauge to `value` at `now`.
    ///
    /// The first call creates the gauge with `now` as its origin; later
    /// calls accumulate time-weighted history. Out-of-order updates are
    /// safe — an earlier `now` contributes a zero-length interval (the
    /// gauge clock never runs backwards).
    pub fn gauge_set(&mut self, key: &str, now: SimTime, value: f64) {
        // Allocation-free on the (hot) existing-key path; see `add`.
        if let Some(g) = self.gauges.get_mut(key) {
            g.set(now, value);
        } else {
            self.gauges
                .insert(key.to_string(), TimeWeightedGauge::new(now, value));
        }
    }

    /// Adds `delta` to the named gauge at `now` (created at `delta`).
    pub fn gauge_add(&mut self, key: &str, now: SimTime, delta: f64) {
        if let Some(g) = self.gauges.get_mut(key) {
            g.add(now, delta);
        } else {
            let mut g = TimeWeightedGauge::new(now, 0.0);
            g.add(now, delta);
            self.gauges.insert(key.to_string(), g);
        }
    }

    /// Looks up a gauge.
    pub fn gauge(&self, key: &str) -> Option<&TimeWeightedGauge> {
        self.gauges.get(key)
    }

    /// Records a sample into the named histogram (created on first use).
    pub fn observe(&mut self, key: &str, v: f64) {
        // Allocation-free on the (hot) existing-key path; see `add`.
        if let Some(h) = self.histograms.get_mut(key) {
            h.record(v);
        } else {
            self.histograms
                .entry(key.to_string())
                .or_default()
                .record(v);
        }
    }

    /// Looks up a histogram.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Interpolated quantile of the named histogram (zero when absent).
    pub fn quantile(&mut self, key: &str, q: f64) -> f64 {
        self.histograms
            .get_mut(key)
            .map(|h| h.quantile(q))
            .unwrap_or(0.0)
    }

    /// Accumulates every gauge up to `now` so means cover the full run.
    /// Call once at the end of a simulation before exporting.
    pub fn finalize(&mut self, now: SimTime) {
        for g in self.gauges.values_mut() {
            g.finalized_mean(now);
        }
    }

    /// All keys, each prefixed with its metric kind.
    pub fn keys(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        out.extend(self.counters.keys().map(|k| format!("counter:{k}")));
        out.extend(self.gauges.keys().map(|k| format!("gauge:{k}")));
        out.extend(self.histograms.keys().map(|k| format!("histogram:{k}")));
        out
    }

    /// Returns `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders a snapshot of every metric as a JSON object.
    pub fn to_json(&mut self) -> JsonValue {
        let mut counters = JsonValue::object();
        for (k, c) in &self.counters {
            counters.set(k, c.get());
        }
        let mut gauges = JsonValue::object();
        for (k, g) in &self.gauges {
            gauges.set(
                k,
                JsonValue::object()
                    .with("current", g.current())
                    .with("mean", g.mean())
                    .with("peak", g.peak()),
            );
        }
        let mut histograms = JsonValue::object();
        // Quantiles need `&mut` (lazy sort), so iterate keys by value.
        let keys: Vec<String> = self.histograms.keys().cloned().collect();
        for k in keys {
            let h = self.histograms.get_mut(&k).expect("key just listed");
            let snap = JsonValue::object()
                .with("count", h.len())
                .with("mean", h.mean())
                .with("p50", h.quantile(0.50))
                .with("p90", h.quantile(0.90))
                .with("p99", h.quantile(0.99))
                .with("min", h.quantile(0.0))
                .with("max", h.quantile(1.0));
            histograms.set(&k, snap);
        }
        JsonValue::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }

    /// Renders the snapshot as long-format CSV: `kind,key,stat,value`.
    pub fn to_csv(&mut self) -> String {
        let mut out = String::from("kind,key,stat,value\n");
        for (k, c) in &self.counters {
            writeln!(out, "counter,{k},value,{}", c.get()).expect("writing to String cannot fail");
        }
        for (k, g) in &self.gauges {
            for (stat, v) in [
                ("current", g.current()),
                ("mean", g.mean()),
                ("peak", g.peak()),
            ] {
                writeln!(out, "gauge,{k},{stat},{v:.6}").expect("writing to String cannot fail");
            }
        }
        let keys: Vec<String> = self.histograms.keys().cloned().collect();
        for k in keys {
            let h = self.histograms.get_mut(&k).expect("key just listed");
            for (stat, v) in [
                ("count", h.len() as f64),
                ("mean", h.mean()),
                ("p50", h.quantile(0.50)),
                ("p90", h.quantile(0.90)),
                ("p99", h.quantile(0.99)),
            ] {
                writeln!(out, "histogram,{k},{stat},{v:.6}")
                    .expect("writing to String cannot fail");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 0.0);
        g.set(SimTime::from_secs(10), 100.0); // 0 for 10s
        g.set(SimTime::from_secs(20), 0.0); // 100 for 10s
        assert!((g.mean() - 50.0).abs() < 1e-9);
        assert_eq!(g.peak(), 100.0);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn gauge_finalized_mean_extends_interval() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 10.0);
        let m = g.finalized_mean(SimTime::from_secs(4));
        assert!((m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_add_is_relative() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 1.0);
        g.add(SimTime::from_secs(1), 2.0);
        assert_eq!(g.current(), 3.0);
        g.add(SimTime::from_secs(2), -1.5);
        assert_eq!(g.current(), 1.5);
    }

    #[test]
    fn series_records_and_averages() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 2.0);
        ts.push(SimTime::from_secs(2), 4.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.last(), Some(4.0));
        assert!((ts.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn series_resample_fills_gaps() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 1.0);
        ts.push(SimTime::from_secs(0), 3.0);
        ts.push(SimTime::from_secs(5), 10.0);
        let r = ts.resample(SimDuration::from_secs(1));
        assert_eq!(r.len(), 6);
        assert_eq!(r[0].1, 2.0); // Average of 1 and 3.
        assert_eq!(r[1].1, 2.0); // Gap repeats previous.
        assert_eq!(r[5].1, 10.0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn registry_creates_lazily_and_counts() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.count("cluster.launched"), 0);
        r.incr("cluster.launched");
        r.add("cluster.launched", 4);
        r.incr("cluster.preempted");
        assert_eq!(r.count("cluster.launched"), 5);
        assert_eq!(r.count("cluster.preempted"), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn registry_gauge_tolerates_out_of_order_updates() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("util", SimTime::from_secs(10), 1.0);
        r.gauge_set("util", SimTime::from_secs(20), 3.0); // 1.0 for 10s
                                                          // Regression in time: must not panic or count negative intervals.
        r.gauge_set("util", SimTime::from_secs(5), 7.0);
        r.gauge_set("util", SimTime::from_secs(20), 7.0);
        let g = r.gauge("util").unwrap();
        assert_eq!(g.current(), 7.0);
        assert_eq!(g.peak(), 7.0);
        // Only the forward intervals accumulate: 1.0 over [10, 20].
        // The out-of-order set contributes a zero-length interval, and the
        // following set(20) finds last_update already at 20.
        assert!((g.mean() - 1.0).abs() < 1e-9, "mean {}", g.mean());
    }

    #[test]
    fn registry_histogram_percentiles() {
        let mut r = MetricsRegistry::new();
        for v in 1..=100 {
            r.observe("lat", f64::from(v));
        }
        assert!((r.quantile("lat", 0.5) - 50.5).abs() < 1.0);
        assert!((r.quantile("lat", 0.9) - 90.0).abs() < 1.5);
        assert!((r.quantile("lat", 0.99) - 99.0).abs() < 1.5);
        assert_eq!(r.quantile("missing", 0.5), 0.0);
        assert_eq!(r.histogram("lat").unwrap().len(), 100);
    }

    #[test]
    fn registry_json_snapshot() {
        let mut r = MetricsRegistry::new();
        r.add("c.events", 3);
        r.gauge_set("g.util", SimTime::ZERO, 0.5);
        r.gauge_set("g.util", SimTime::from_secs(10), 1.5);
        r.observe("h.lat", 2.0);
        r.observe("h.lat", 4.0);
        r.finalize(SimTime::from_secs(10));
        let doc = r.to_json();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("c.events"))
                .and_then(|v| v.as_f64()),
            Some(3.0)
        );
        let util = doc.get("gauges").and_then(|g| g.get("g.util")).unwrap();
        assert_eq!(util.get("current").and_then(|v| v.as_f64()), Some(1.5));
        assert!((util.get("mean").and_then(|v| v.as_f64()).unwrap() - 0.5).abs() < 1e-9);
        let lat = doc.get("histograms").and_then(|h| h.get("h.lat")).unwrap();
        assert_eq!(lat.get("count").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(lat.get("mean").and_then(|v| v.as_f64()), Some(3.0));
        // The compact rendering parses back to the same document.
        let round = crate::json::JsonValue::parse(&doc.to_string()).unwrap();
        assert_eq!(round, doc);
    }

    #[test]
    fn registry_csv_snapshot() {
        let mut r = MetricsRegistry::new();
        r.incr("a.b");
        r.gauge_set("g", SimTime::ZERO, 2.0);
        r.observe("h", 1.0);
        let csv = r.to_csv();
        assert!(csv.starts_with("kind,key,stat,value\n"));
        assert!(csv.contains("counter,a.b,value,1"));
        assert!(csv.contains("gauge,g,current,2.000000"));
        assert!(csv.contains("histogram,h,p50,1.000000"));
    }

    #[test]
    fn registry_keys_are_kind_prefixed() {
        let mut r = MetricsRegistry::new();
        r.incr("x");
        r.gauge_set("y", SimTime::ZERO, 0.0);
        r.observe("z", 1.0);
        assert_eq!(r.keys(), vec!["counter:x", "gauge:y", "histogram:z"]);
    }

    #[test]
    fn metricset_csv() {
        let mut m = MetricSet::new();
        m.push("x", SimTime::from_secs(1), 1.5);
        m.push("x", SimTime::from_secs(2), 2.5);
        m.push("y", SimTime::ZERO, 0.0);
        let csv = m.to_csv();
        assert!(csv.starts_with("series,time_s,value\n"));
        assert!(csv.contains("x,1.000000,1.500000"));
        assert!(csv.contains("y,0.000000,0.000000"));
        assert_eq!(m.names(), vec!["x", "y"]);
        assert_eq!(m.get("x").map(|ts| ts.len()), Some(2));
    }
}
