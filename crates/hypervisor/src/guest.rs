//! The guest-OS model: visible resources, memory accounting, and
//! best-effort hot-plug/unplug (paper §3.2.2).
//!
//! The paper's prototype uses QEMU's agent-based hotplug, which lets the
//! guest kernel execute unplug *best-effort*: operations may partially
//! fail when resources are busy. This model reproduces those failure
//! modes:
//!
//! * vCPUs unplug only in whole units (`⌊unplug_target⌋`), at least one
//!   vCPU always stays online, and pinned vCPUs refuse to unplug;
//! * memory unplug requires assembling contiguous free blocks, so only a
//!   fragmentation-limited fraction of free memory is unpluggable;
//! * a bounded fraction of the page cache can be dropped to free memory;
//! * disks and NICs never unplug ("generally unsafe").

use std::cell::RefCell;
use std::rc::Rc;

use deflate_core::{GuestOs, ReclaimResult, ResourceKind, ResourceVector};
use simkit::{SimDuration, SimTime};

use crate::latency::LatencyModel;

/// The application's current resource usage inside the guest.
///
/// Application models (the `apps`/`spark` crates) update this as they run
/// and as their deflation agents relinquish resources; the guest and
/// hypervisor layers read it to decide what is free, what must be swapped,
/// and what is safely unpluggable.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AppUsage {
    /// Resident memory demand (MiB).
    pub memory_mb: f64,
    /// Average number of busy vCPUs.
    pub busy_vcpus: f64,
    /// Disk bandwidth in use (MB/s).
    pub disk_mbps: f64,
    /// Network bandwidth in use (MB/s).
    pub net_mbps: f64,
}

/// Counters for guest hot-plug/unplug activity, kept on [`VmState`] so
/// the cluster manager can fold them into its metrics registry when a VM
/// leaves (`vm.hotplug.*` keys).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct HotplugStats {
    /// Unplug operations attempted (one per [`GuestOs::try_unplug`]).
    pub unplug_attempts: u64,
    /// Attempts that reclaimed less than asked (busy or fragmented).
    pub unplug_shortfalls: u64,
    /// Hot-plug (re-add) operations.
    pub plug_ops: u64,
    /// Total vCPUs removed across all unplugs.
    pub cpus_unplugged: f64,
    /// Total memory removed across all unplugs (MiB; includes ballooned).
    pub memory_unplugged_mb: f64,
}

/// The full mutable state of one VM, shared between the guest model, the
/// hypervisor backend, and the application agent.
///
/// The simulation is single-threaded, so the state is shared through
/// `Rc<RefCell<_>>`; every borrow is confined to a single method.
#[derive(Debug)]
pub struct VmState {
    /// Nominal (maximum) resource allocation.
    pub spec: ResourceVector,
    /// Resources removed from the guest via hot-unplug.
    pub unplugged: ResourceVector,
    /// Resources reclaimed via hypervisor overcommitment.
    pub overcommitted: ResourceVector,
    /// Application usage inside the guest.
    pub usage: AppUsage,
    /// Guest page cache (MiB); grows with I/O, shrinks under pressure.
    pub page_cache_mb: f64,
    /// Memory swapped out by the host under direct pressure (the
    /// application's RSS overflowing its effective memory, MiB).
    pub swapped_mb: f64,
    /// Application pages the host swapped *blindly*: black-box memory
    /// reclamation cannot tell free guest pages from used ones and "swaps
    /// application pages to disk, instead of free pages" (§3.1, MiB).
    pub blind_swapped_mb: f64,
    /// Guest memory held by an inflated balloon (MiB); reclaimed like
    /// unplugged memory but still *visible* to the guest.
    pub ballooned_mb: f64,
    /// vCPUs with pinned tasks (refuse to unplug).
    pub pinned_vcpus: u32,
    /// Hot-plug/unplug activity counters.
    pub hotplug: HotplugStats,
}

/// Shared handle to a VM's state.
pub type SharedVmState = Rc<RefCell<VmState>>;

impl VmState {
    /// Creates state for a freshly-booted VM with the given spec.
    pub fn new(spec: ResourceVector) -> Self {
        VmState {
            spec,
            unplugged: ResourceVector::ZERO,
            overcommitted: ResourceVector::ZERO,
            usage: AppUsage::default(),
            page_cache_mb: 0.0,
            swapped_mb: 0.0,
            blind_swapped_mb: 0.0,
            ballooned_mb: 0.0,
            pinned_vcpus: 0,
            hotplug: HotplugStats::default(),
        }
    }

    /// Wraps new state in a shared handle.
    pub fn shared(spec: ResourceVector) -> SharedVmState {
        Rc::new(RefCell::new(VmState::new(spec)))
    }

    /// What the guest OS sees (spec minus unplugged).
    pub fn visible(&self) -> ResourceVector {
        self.spec.saturating_sub(&self.unplugged)
    }

    /// What the application can actually use (visible minus
    /// hypervisor-overcommitted, minus balloon-held memory).
    pub fn effective(&self) -> ResourceVector {
        let e = self.visible().saturating_sub(&self.overcommitted);
        let mem = (e.get(ResourceKind::Memory) - self.ballooned_mb).max(0.0);
        e.with(ResourceKind::Memory, mem)
    }

    /// Online vCPU count (integral).
    pub fn online_vcpus(&self) -> u32 {
        self.visible().get(ResourceKind::Cpu).round() as u32
    }

    /// Memory visible to the guest (MiB).
    pub fn visible_memory_mb(&self) -> f64 {
        self.visible().get(ResourceKind::Memory)
    }

    /// Effective memory after hypervisor limits (MiB).
    pub fn effective_memory_mb(&self) -> f64 {
        self.effective().get(ResourceKind::Memory)
    }

    /// Free guest memory: visible minus application RSS, page cache, and
    /// balloon-held pages.
    pub fn free_memory_mb(&self) -> f64 {
        (self.visible_memory_mb() - self.usage.memory_mb - self.page_cache_mb - self.ballooned_mb)
            .max(0.0)
    }

    /// Whether the guest is out of memory: the application's RSS exceeds
    /// the memory the OS still has (after forced unplug). The guest OOM
    /// killer would terminate the application.
    pub fn is_oom(&self) -> bool {
        self.usage.memory_mb > self.visible_memory_mb() + 1e-9
    }

    /// Recomputes host swap given current limits: the amount of
    /// application RSS that no longer fits in effective memory. The guest
    /// is assumed to drop page cache before anything swaps. Blindly
    /// swapped pages are capped so pressure + blind never exceeds the
    /// application's RSS.
    pub fn recompute_swap(&mut self) {
        let effective = self.effective_memory_mb();
        // Page cache shrinks under pressure before the app swaps.
        let cache_room = (effective - self.usage.memory_mb).max(0.0);
        self.page_cache_mb = self.page_cache_mb.min(cache_room);
        self.swapped_mb = (self.usage.memory_mb - effective).max(0.0);
        self.blind_swapped_mb = self
            .blind_swapped_mb
            .min((self.usage.memory_mb - self.swapped_mb).max(0.0));
    }

    /// All application pages currently on the host swap device (pressure
    /// plus blind reclamation).
    pub fn total_swapped_mb(&self) -> f64 {
        self.swapped_mb + self.blind_swapped_mb
    }

    /// The deflation fraction per dimension: `1 − effective/spec`.
    pub fn deflation_fraction(&self) -> ResourceVector {
        let eff = self.effective().fraction_of(&self.spec);
        eff.map(|_, v| 1.0 - v)
    }

    /// CPU overcommit ratio: online vCPUs per effective physical core
    /// (≥ 1). Drives the lock-holder-preemption penalty in application
    /// models.
    pub fn cpu_overcommit_ratio(&self) -> f64 {
        let online = f64::from(self.online_vcpus());
        let effective = self.effective().get(ResourceKind::Cpu);
        if effective <= 0.0 {
            if online > 0.0 {
                f64::INFINITY
            } else {
                1.0
            }
        } else {
            (online / effective).max(1.0)
        }
    }
}

/// How guest memory is reclaimed at the OS layer.
///
/// The paper uses hot-unplug because it "updates the resource allocation
/// observed by the OS and applications" and avoids the fragmentation
/// issues of ballooning; the balloon driver is provided for the
/// mechanism-comparison ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMechanism {
    /// Offline whole memory blocks: fast, visible to the guest, but
    /// limited by contiguous-block assembly (the fragmentation factor).
    #[default]
    Hotplug,
    /// Inflate a balloon of pinned guest pages: reaches *all* free pages
    /// (no contiguity constraint) but is slower and invisible — the
    /// guest still believes it owns its full allocation.
    Balloon,
}

/// Tunables for the guest-OS hot-unplug model.
#[derive(Debug, Clone, Copy)]
pub struct GuestConfig {
    /// Fraction of free memory that can be assembled into unpluggable
    /// contiguous blocks (fragmentation limit).
    pub frag_factor: f64,
    /// Fraction of the page cache the OS will drop to satisfy an unplug.
    pub droppable_cache: f64,
    /// Unsafe mode: unplug memory even when it is not free, as a forced
    /// OS-only reclamation would. Pushing visible memory below the
    /// application's RSS triggers the guest OOM killer
    /// ([`VmState::is_oom`]) — this reproduces the paper's Fig. 5a
    /// finding that OS-level deflation alone terminates memcached past
    /// ~40 % deflation.
    pub force_unplug: bool,
    /// Guest memory reclamation mechanism.
    pub memory_mechanism: MemoryMechanism,
}

impl Default for GuestConfig {
    fn default() -> Self {
        GuestConfig {
            frag_factor: 0.95,
            droppable_cache: 0.8,
            force_unplug: false,
            memory_mechanism: MemoryMechanism::Hotplug,
        }
    }
}

/// The guest-OS layer of one VM. Implements [`GuestOs`].
#[derive(Debug)]
pub struct GuestModel {
    state: SharedVmState,
    cfg: GuestConfig,
    latency: LatencyModel,
}

impl GuestModel {
    /// Creates a guest model over shared VM state.
    pub fn new(state: SharedVmState, cfg: GuestConfig, latency: LatencyModel) -> Self {
        GuestModel {
            state,
            cfg,
            latency,
        }
    }

    /// Shared state handle (for tests and wiring).
    pub fn state(&self) -> SharedVmState {
        Rc::clone(&self.state)
    }
}

impl GuestOs for GuestModel {
    fn unpluggable(&self) -> ResourceVector {
        let st = self.state.borrow();
        let online = st.online_vcpus();
        let keep = 1u32.max(st.pinned_vcpus);
        let cpus = f64::from(online.saturating_sub(keep));
        let mem = if self.cfg.force_unplug {
            // Unsafe mode: everything but a sliver is "unpluggable", even
            // application-resident memory. This is how a forced OS-only
            // reclamation behaves — and why it can OOM the guest.
            self.cfg.frag_factor * (st.visible_memory_mb() - 256.0).max(0.0)
        } else if self.cfg.memory_mechanism == MemoryMechanism::Balloon {
            // The balloon has no contiguity constraint: every free page
            // plus the droppable cache is reachable.
            st.free_memory_mb() + self.cfg.droppable_cache * st.page_cache_mb
        } else {
            self.cfg.frag_factor * st.free_memory_mb() + self.cfg.droppable_cache * st.page_cache_mb
        };
        // Disk and NIC hot-unplug is unsafe and never offered.
        ResourceVector::new(cpus, mem, 0.0, 0.0)
    }

    fn try_unplug(
        &mut self,
        _now: SimTime,
        target: &ResourceVector,
        budget: Option<SimDuration>,
    ) -> ReclaimResult {
        let cap = self.unpluggable();
        let mut st = self.state.borrow_mut();
        let mut latency = SimDuration::ZERO;
        let mut got = ResourceVector::ZERO;

        // vCPUs: whole units only, fast.
        let want_cpus = target.get(ResourceKind::Cpu).floor();
        let cpus = want_cpus.min(cap.get(ResourceKind::Cpu)).max(0.0);
        if cpus >= 1.0 {
            let cpu_latency = self.latency.vcpu_unplug(cpus as u32);
            if budget.map(|b| cpu_latency <= b).unwrap_or(true) {
                got.set(ResourceKind::Cpu, cpus);
                latency += cpu_latency;
            }
        }

        // Memory: rate-limited by page migration (hot-unplug) or balloon
        // inflation, capped by the budget.
        let balloon = self.cfg.memory_mechanism == MemoryMechanism::Balloon;
        let want_mem = target
            .get(ResourceKind::Memory)
            .min(cap.get(ResourceKind::Memory));
        if want_mem > 0.0 {
            let mem_budget = budget.map(|b| {
                if b > latency {
                    b - latency
                } else {
                    SimDuration::ZERO
                }
            });
            let mem_possible = mem_budget
                .map(|b| {
                    if balloon {
                        self.latency.balloonable_within(b)
                    } else {
                        self.latency.unpluggable_within(b)
                    }
                })
                .unwrap_or(f64::INFINITY);
            let mem = want_mem.min(mem_possible);
            if mem > 0.0 {
                got.set(ResourceKind::Memory, mem);
                latency += if balloon {
                    self.latency.balloon_inflate(mem)
                } else {
                    self.latency.memory_unplug(mem)
                };

                // Account where the memory came from: free pages first,
                // then dropped page cache.
                let free_reach = if balloon {
                    st.free_memory_mb()
                } else {
                    self.cfg.frag_factor * st.free_memory_mb()
                };
                let from_free = mem.min(free_reach);
                let from_cache = (mem - from_free).max(0.0);
                st.page_cache_mb = (st.page_cache_mb - from_cache).max(0.0);
            }
        }

        if balloon {
            // The balloon holds the memory inside the guest; only CPUs
            // are actually unplugged.
            st.ballooned_mb += got.get(ResourceKind::Memory);
            st.unplugged += got.with(ResourceKind::Memory, 0.0);
        } else {
            st.unplugged += got;
        }
        st.hotplug.unplug_attempts += 1;
        if !got.scale(1.0 + 1e-9).dominates(target) {
            st.hotplug.unplug_shortfalls += 1;
        }
        st.hotplug.cpus_unplugged += got.get(ResourceKind::Cpu);
        st.hotplug.memory_unplugged_mb += got.get(ResourceKind::Memory);
        st.recompute_swap();
        ReclaimResult::new(got, latency)
    }

    fn hot_plug(&mut self, _now: SimTime, amount: &ResourceVector) -> ResourceVector {
        let mut st = self.state.borrow_mut();
        // CPUs plug back in whole units; memory in any amount. A balloon
        // deflates before unplugged memory is re-plugged.
        let cpus = amount
            .get(ResourceKind::Cpu)
            .min(st.unplugged.get(ResourceKind::Cpu))
            .floor();
        let want_mem = amount.get(ResourceKind::Memory);
        let from_balloon = want_mem.min(st.ballooned_mb);
        st.ballooned_mb -= from_balloon;
        let from_unplug = (want_mem - from_balloon).min(st.unplugged.get(ResourceKind::Memory));
        let give = ResourceVector::new(cpus, from_balloon + from_unplug, 0.0, 0.0);
        st.unplugged =
            st.unplugged
                .saturating_sub(&ResourceVector::new(cpus, from_unplug, 0.0, 0.0));
        st.hotplug.plug_ops += 1;
        st.recompute_swap();
        give
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ResourceVector {
        ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0)
    }

    fn guest_with_usage(mem_used: f64, cache: f64) -> GuestModel {
        let state = VmState::shared(spec());
        {
            let mut st = state.borrow_mut();
            st.usage.memory_mb = mem_used;
            st.page_cache_mb = cache;
        }
        GuestModel::new(state, GuestConfig::default(), LatencyModel::default())
    }

    #[test]
    fn visible_and_effective_accounting() {
        let state = VmState::shared(spec());
        {
            let mut st = state.borrow_mut();
            st.unplugged = ResourceVector::new(1.0, 2_048.0, 0.0, 0.0);
            st.overcommitted = ResourceVector::new(0.5, 1_024.0, 50.0, 0.0);
        }
        let st = state.borrow();
        assert_eq!(
            st.visible(),
            ResourceVector::new(3.0, 14_336.0, 200.0, 1_000.0)
        );
        assert_eq!(
            st.effective(),
            ResourceVector::new(2.5, 13_312.0, 150.0, 1_000.0)
        );
        assert_eq!(st.online_vcpus(), 3);
        assert!((st.cpu_overcommit_ratio() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn unpluggable_excludes_last_cpu_and_io() {
        let g = guest_with_usage(4_096.0, 1_000.0);
        let cap = g.unpluggable();
        assert_eq!(cap.get(ResourceKind::Cpu), 3.0);
        assert_eq!(cap.get(ResourceKind::DiskBw), 0.0);
        assert_eq!(cap.get(ResourceKind::NetBw), 0.0);
        // free = 16384 - 4096 - 1000 = 11288; 0.95*11288 + 0.8*1000.
        let expected = 0.95 * 11_288.0 + 0.8 * 1_000.0;
        assert!((cap.get(ResourceKind::Memory) - expected).abs() < 1e-6);
    }

    #[test]
    fn pinned_vcpus_refuse_unplug() {
        let g = guest_with_usage(0.0, 0.0);
        g.state().borrow_mut().pinned_vcpus = 3;
        assert_eq!(g.unpluggable().get(ResourceKind::Cpu), 1.0);
        g.state().borrow_mut().pinned_vcpus = 6;
        assert_eq!(g.unpluggable().get(ResourceKind::Cpu), 0.0);
    }

    #[test]
    fn unplug_is_integral_for_cpus() {
        let mut g = guest_with_usage(0.0, 0.0);
        let r = g.try_unplug(SimTime::ZERO, &ResourceVector::cpu(2.7), None);
        assert_eq!(r.reclaimed.get(ResourceKind::Cpu), 2.0);
        assert_eq!(g.state().borrow().online_vcpus(), 2);
    }

    #[test]
    fn unplug_memory_capped_by_free() {
        let mut g = guest_with_usage(12_288.0, 0.0); // 4 GiB free.
        let r = g.try_unplug(SimTime::ZERO, &ResourceVector::memory(8_192.0), None);
        let got = r.reclaimed.get(ResourceKind::Memory);
        assert!((got - 0.95 * 4_096.0).abs() < 1e-6, "got {got}");
        assert!(r.latency > SimDuration::ZERO);
    }

    #[test]
    fn unplug_budget_limits_memory() {
        let mut g = guest_with_usage(0.0, 0.0);
        // 1 s budget at 4000 MB/s => at most 4000 MB.
        let r = g.try_unplug(
            SimTime::ZERO,
            &ResourceVector::memory(10_000.0),
            Some(SimDuration::from_secs(1)),
        );
        let got = r.reclaimed.get(ResourceKind::Memory);
        assert!((got - 4_000.0).abs() < 1.0, "got {got}");
        assert!(r.latency <= SimDuration::from_secs(1) + SimDuration::from_millis(1));
    }

    #[test]
    fn unplug_drops_page_cache_when_free_insufficient() {
        let mut g = guest_with_usage(15_000.0, 1_000.0);
        // free = 384; frag-capped 364.8; cache droppable 800.
        let r = g.try_unplug(SimTime::ZERO, &ResourceVector::memory(1_000.0), None);
        let got = r.reclaimed.get(ResourceKind::Memory);
        assert!(got > 900.0, "got {got}");
        assert!(g.state().borrow().page_cache_mb < 1_000.0);
    }

    #[test]
    fn hot_plug_returns_only_what_was_unplugged() {
        let mut g = guest_with_usage(0.0, 0.0);
        g.try_unplug(
            SimTime::ZERO,
            &ResourceVector::new(2.0, 4_096.0, 0.0, 0.0),
            None,
        );
        let back = g.hot_plug(SimTime::ZERO, &ResourceVector::new(3.0, 10_000.0, 0.0, 0.0));
        assert_eq!(back.get(ResourceKind::Cpu), 2.0);
        assert!((back.get(ResourceKind::Memory) - 4_096.0).abs() < 1e-6);
        assert!(g.state().borrow().unplugged.is_zero());
    }

    #[test]
    fn hotplug_stats_track_attempts_and_shortfalls() {
        let mut g = guest_with_usage(12_288.0, 0.0); // 4 GiB free.
                                                     // Asks for more than is unpluggable: counts as a shortfall.
        g.try_unplug(SimTime::ZERO, &ResourceVector::memory(8_192.0), None);
        // Fully satisfiable CPU unplug: no shortfall.
        g.try_unplug(SimTime::ZERO, &ResourceVector::cpu(2.0), None);
        g.hot_plug(SimTime::ZERO, &ResourceVector::cpu(2.0));
        let st = g.state();
        let stats = st.borrow().hotplug;
        assert_eq!(stats.unplug_attempts, 2);
        assert_eq!(stats.unplug_shortfalls, 1);
        assert_eq!(stats.plug_ops, 1);
        assert_eq!(stats.cpus_unplugged, 2.0);
        assert!(stats.memory_unplugged_mb > 0.0);
    }

    #[test]
    fn recompute_swap_drops_cache_first() {
        let state = VmState::shared(spec());
        {
            let mut st = state.borrow_mut();
            st.usage.memory_mb = 10_000.0;
            st.page_cache_mb = 4_000.0;
            st.overcommitted = ResourceVector::memory(8_192.0); // Effective 8192.
            st.recompute_swap();
            // Cache squeezed to 0 (10 000 used > 8 192 effective)…
            assert_eq!(st.page_cache_mb, 0.0);
            // …and the overflow of RSS swaps.
            assert!((st.swapped_mb - (10_000.0 - 8_192.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn deflation_fraction_tracks_effective() {
        let state = VmState::shared(spec());
        state.borrow_mut().overcommitted = ResourceVector::new(2.0, 8_192.0, 100.0, 500.0);
        let f = state.borrow().deflation_fraction();
        for k in ResourceKind::ALL {
            assert!((f.get(k) - 0.5).abs() < 1e-9, "{k}: {}", f.get(k));
        }
    }

    #[test]
    fn balloon_reclaims_without_resizing_guest() {
        let state = VmState::shared(spec());
        state.borrow_mut().usage.memory_mb = 6_144.0;
        let cfg = GuestConfig {
            memory_mechanism: MemoryMechanism::Balloon,
            ..GuestConfig::default()
        };
        let mut g = GuestModel::new(state, cfg, LatencyModel::default());
        let r = g.try_unplug(SimTime::ZERO, &ResourceVector::memory(8_192.0), None);
        assert!((r.reclaimed.get(ResourceKind::Memory) - 8_192.0).abs() < 1e-6);
        let st = g.state();
        let st = st.borrow();
        // The guest still sees its full allocation…
        assert_eq!(st.visible_memory_mb(), 16_384.0);
        // …but the effective memory shrank.
        assert!((st.effective_memory_mb() - 8_192.0).abs() < 1e-6);
        assert!((st.ballooned_mb - 8_192.0).abs() < 1e-6);
    }

    #[test]
    fn balloon_reaches_all_free_but_slower() {
        let mk = |mech| {
            let state = VmState::shared(spec());
            state.borrow_mut().usage.memory_mb = 6_144.0;
            GuestModel::new(
                state,
                GuestConfig {
                    memory_mechanism: mech,
                    ..GuestConfig::default()
                },
                LatencyModel::default(),
            )
        };
        let hot = mk(MemoryMechanism::Hotplug);
        let bal = mk(MemoryMechanism::Balloon);
        // free = 10 240: balloon reaches all of it, hotplug only the
        // fragmentation-limited share.
        assert!(
            bal.unpluggable().get(ResourceKind::Memory)
                > hot.unpluggable().get(ResourceKind::Memory)
        );
        // Same amount takes longer via the balloon.
        let mut hot = hot;
        let mut bal = bal;
        let target = ResourceVector::memory(4_096.0);
        let rh = hot.try_unplug(SimTime::ZERO, &target, None);
        let rb = bal.try_unplug(SimTime::ZERO, &target, None);
        assert!(rb.latency > rh.latency);
    }

    #[test]
    fn balloon_deflates_on_hot_plug() {
        let state = VmState::shared(spec());
        let cfg = GuestConfig {
            memory_mechanism: MemoryMechanism::Balloon,
            ..GuestConfig::default()
        };
        let mut g = GuestModel::new(state, cfg, LatencyModel::default());
        g.try_unplug(SimTime::ZERO, &ResourceVector::memory(6_000.0), None);
        let back = g.hot_plug(SimTime::ZERO, &ResourceVector::memory(10_000.0));
        assert!((back.get(ResourceKind::Memory) - 6_000.0).abs() < 1e-6);
        assert_eq!(g.state().borrow().ballooned_mb, 0.0);
    }

    #[test]
    fn zero_effective_cpu_ratio_is_infinite() {
        let state = VmState::shared(spec());
        state.borrow_mut().overcommitted = ResourceVector::cpu(4.0);
        assert!(state.borrow().cpu_overcommit_ratio().is_infinite());
    }
}
