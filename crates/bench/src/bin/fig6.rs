//! Regenerates paper Figs. 6a–6d.
fn main() {
    bench::figs::fig6::run().print();
}
