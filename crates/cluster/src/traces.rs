//! Synthetic cloud workload traces.
//!
//! The paper's cluster experiments replay the Eucalyptus IaaS traces
//! ("VM arrivals, lifetimes, and VM sizes", §6.3). Those traces are not
//! redistributable, so this module generates synthetic traces with the
//! same structure: Poisson arrivals, heavy-tailed (log-normal) lifetimes,
//! and a discrete instance-type size mix; a configurable fraction of VMs
//! is low-priority/deflatable. Generation is seeded and deterministic, so
//! every experiment replays exactly.

use deflate_core::{ResourceVector, VmId};
use simkit::{SimDuration, SimRng, SimTime};

/// A cloud instance type (size mix entry).
#[derive(Debug, Clone, Copy)]
pub struct InstanceType {
    /// Type name (m1.small-style).
    pub name: &'static str,
    /// Resource demand.
    pub spec: ResourceVector,
    /// Relative popularity weight.
    pub weight: f64,
}

/// The default Eucalyptus-flavoured size mix: small types dominate.
pub fn default_instance_types() -> Vec<InstanceType> {
    vec![
        InstanceType {
            name: "m1.small",
            spec: ResourceVector::new(1.0, 2_048.0, 25.0, 50.0),
            weight: 0.40,
        },
        InstanceType {
            name: "m1.medium",
            spec: ResourceVector::new(2.0, 4_096.0, 50.0, 100.0),
            weight: 0.30,
        },
        InstanceType {
            name: "m1.large",
            spec: ResourceVector::new(4.0, 8_192.0, 100.0, 200.0),
            weight: 0.20,
        },
        InstanceType {
            name: "m1.xlarge",
            spec: ResourceVector::new(8.0, 16_384.0, 200.0, 400.0),
            weight: 0.10,
        },
    ]
}

/// One VM request in a trace.
#[derive(Debug, Clone)]
pub struct VmRequest {
    /// Unique id.
    pub id: VmId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Requested lifetime (the VM exits on its own after this).
    pub lifetime: SimDuration,
    /// Resource demand.
    pub spec: ResourceVector,
    /// Instance-type name.
    pub type_name: &'static str,
    /// Whether the VM is low-priority (deflatable).
    pub low_priority: bool,
    /// Minimum size for deflation (zero for high-priority VMs, a
    /// type-dependent fraction of the spec for low-priority ones).
    pub min_size: ResourceVector,
}

/// Trace generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Mean VM arrivals per simulated hour.
    pub arrivals_per_hour: f64,
    /// Log-normal lifetime: median in minutes.
    pub lifetime_median_mins: f64,
    /// Log-normal lifetime: sigma of the underlying normal.
    pub lifetime_sigma: f64,
    /// Fraction of VMs that are low-priority/deflatable.
    pub low_priority_fraction: f64,
    /// Minimum size of low-priority VMs as a fraction of their spec
    /// (the paper's "empirically determined minimum levels").
    pub min_size_fraction: f64,
    /// Instance-type mix.
    pub types: Vec<InstanceType>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            arrivals_per_hour: 120.0,
            lifetime_median_mins: 90.0,
            lifetime_sigma: 1.2,
            low_priority_fraction: 0.5,
            min_size_fraction: 0.15,
            types: default_instance_types(),
            seed: 42,
        }
    }
}

/// A deterministic synthetic trace generator.
#[derive(Debug)]
pub struct TraceGenerator {
    cfg: TraceConfig,
    rng: SimRng,
    next_id: u64,
    clock: SimTime,
}

impl TraceGenerator {
    /// Creates a generator.
    pub fn new(cfg: TraceConfig) -> Self {
        let seed = cfg.seed;
        TraceGenerator {
            cfg,
            rng: SimRng::seed_from_u64(seed),
            next_id: 0,
            clock: SimTime::ZERO,
        }
    }

    /// Generates the next request.
    pub fn next_request(&mut self) -> VmRequest {
        let rate_per_sec = self.cfg.arrivals_per_hour / 3_600.0;
        self.clock += self.rng.poisson_interarrival(rate_per_sec);

        let weights: Vec<f64> = self.cfg.types.iter().map(|t| t.weight).collect();
        let ty = self.cfg.types[self.rng.weighted_index(&weights)];

        let median_secs = self.cfg.lifetime_median_mins * 60.0;
        let lifetime = SimDuration::from_secs_f64(
            self.rng
                .lognormal(median_secs.ln(), self.cfg.lifetime_sigma),
        );

        let low_priority = self.rng.chance(self.cfg.low_priority_fraction);
        let min_size = if low_priority {
            ty.spec.scale(self.cfg.min_size_fraction)
        } else {
            ResourceVector::ZERO
        };

        let id = VmId(self.next_id);
        self.next_id += 1;
        VmRequest {
            id,
            arrival: self.clock,
            lifetime,
            spec: ty.spec,
            type_name: ty.name,
            low_priority,
            min_size,
        }
    }

    /// Generates requests until `horizon`.
    pub fn generate_until(&mut self, horizon: SimTime) -> Vec<VmRequest> {
        let mut out = Vec::new();
        loop {
            let req = self.next_request();
            if req.arrival > horizon {
                break;
            }
            out.push(req);
        }
        out
    }
}

/// A trace-file parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The header row was missing or wrong.
    BadHeader,
    /// A row had the wrong number of columns.
    BadRow(usize),
    /// A field failed to parse.
    BadField {
        /// 1-based row number (excluding the header).
        row: usize,
        /// Column name.
        column: &'static str,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadHeader => write!(f, "missing or malformed header row"),
            TraceParseError::BadRow(r) => write!(f, "row {r}: wrong column count"),
            TraceParseError::BadField { row, column } => {
                write!(f, "row {row}: malformed {column}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

const CSV_HEADER: &str =
    "id,arrival_s,lifetime_s,cpu,memory_mib,disk_mbps,net_mbps,low_priority,min_fraction";

/// Serializes a trace in the repository's CSV format (Eucalyptus-style:
/// arrivals, lifetimes, sizes, priority class).
pub fn to_csv(requests: &[VmRequest]) -> String {
    use deflate_core::ResourceKind as K;
    use std::fmt::Write as _;
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in requests {
        let min_fraction = if r.spec.get(K::Cpu) > 0.0 {
            r.min_size.get(K::Cpu) / r.spec.get(K::Cpu)
        } else {
            0.0
        };
        writeln!(
            out,
            "{},{:.3},{:.3},{},{},{},{},{},{:.4}",
            r.id.0,
            r.arrival.as_secs_f64(),
            r.lifetime.as_secs_f64(),
            r.spec.get(K::Cpu),
            r.spec.get(K::Memory),
            r.spec.get(K::DiskBw),
            r.spec.get(K::NetBw),
            u8::from(r.low_priority),
            min_fraction,
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Parses a trace from the CSV format written by [`to_csv`].
pub fn from_csv(text: &str) -> Result<Vec<VmRequest>, TraceParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(TraceParseError::BadHeader)?;
    if header.trim() != CSV_HEADER {
        return Err(TraceParseError::BadHeader);
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let row = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 9 {
            return Err(TraceParseError::BadRow(row));
        }
        let num = |idx: usize, column: &'static str| -> Result<f64, TraceParseError> {
            cols[idx]
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or(TraceParseError::BadField { row, column })
        };
        let id = cols[0]
            .parse::<u64>()
            .map_err(|_| TraceParseError::BadField { row, column: "id" })?;
        let low_priority = match cols[7] {
            "0" => false,
            "1" => true,
            _ => {
                return Err(TraceParseError::BadField {
                    row,
                    column: "low_priority",
                })
            }
        };
        let spec = ResourceVector::new(
            num(3, "cpu")?,
            num(4, "memory_mib")?,
            num(5, "disk_mbps")?,
            num(6, "net_mbps")?,
        );
        let min_fraction = num(8, "min_fraction")?;
        out.push(VmRequest {
            id: VmId(id),
            arrival: SimTime::from_secs_f64(num(1, "arrival_s")?),
            lifetime: SimDuration::from_secs_f64(num(2, "lifetime_s")?),
            spec,
            type_name: "csv",
            low_priority,
            min_size: if low_priority {
                spec.scale(min_fraction.min(1.0))
            } else {
                ResourceVector::ZERO
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TraceConfig {
        TraceConfig::default()
    }

    #[test]
    fn deterministic_for_seed() {
        let horizon = SimTime::from_secs(24 * 3_600);
        let a = TraceGenerator::new(config()).generate_until(horizon);
        let b = TraceGenerator::new(config()).generate_until(horizon);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.low_priority, y.low_priority);
        }
    }

    #[test]
    fn arrival_rate_close_to_requested() {
        let horizon = SimTime::from_secs(48 * 3_600);
        let reqs = TraceGenerator::new(config()).generate_until(horizon);
        let per_hour = reqs.len() as f64 / 48.0;
        assert!((per_hour - 120.0).abs() < 15.0, "rate {per_hour}");
    }

    #[test]
    fn arrivals_are_monotonic_and_ids_unique() {
        let reqs = TraceGenerator::new(config()).generate_until(SimTime::from_secs(3_600 * 8));
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].id != w[1].id);
        }
    }

    #[test]
    fn low_priority_fraction_holds() {
        let reqs = TraceGenerator::new(config()).generate_until(SimTime::from_secs(3_600 * 48));
        let low = reqs.iter().filter(|r| r.low_priority).count() as f64;
        let frac = low / reqs.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "low-pri fraction {frac}");
    }

    #[test]
    fn min_sizes_only_for_low_priority() {
        let reqs = TraceGenerator::new(config()).generate_until(SimTime::from_secs(3_600 * 8));
        for r in &reqs {
            if r.low_priority {
                assert!(r.min_size.approx_eq(&r.spec.scale(0.15), 1e-9));
            } else {
                assert!(r.min_size.is_zero());
            }
        }
    }

    #[test]
    fn lifetimes_heavy_tailed() {
        let reqs = TraceGenerator::new(config()).generate_until(SimTime::from_secs(3_600 * 100));
        let mut lifetimes: Vec<f64> = reqs.iter().map(|r| r.lifetime.as_secs_f64()).collect();
        lifetimes.sort_unstable_by(f64::total_cmp);
        let median = lifetimes[lifetimes.len() / 2];
        let p95 = lifetimes[lifetimes.len() * 95 / 100];
        // Median near 90 min; the tail is several times longer.
        assert!(
            (median - 90.0 * 60.0).abs() < 20.0 * 60.0,
            "median {median}"
        );
        assert!(p95 > 3.0 * median, "p95 {p95} median {median}");
    }

    #[test]
    fn csv_round_trips() {
        let reqs = TraceGenerator::new(config()).generate_until(SimTime::from_secs(3_600 * 4));
        assert!(!reqs.is_empty());
        let csv = to_csv(&reqs);
        let back = from_csv(&csv).expect("own CSV parses");
        assert_eq!(back.len(), reqs.len());
        for (a, b) in reqs.iter().zip(back.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.low_priority, b.low_priority);
            assert!(a.spec.approx_eq(&b.spec, 1e-6));
            assert!(
                (a.arrival.as_secs_f64() - b.arrival.as_secs_f64()).abs() < 1e-2,
                "arrival mismatch"
            );
            assert!(a.min_size.approx_eq(&b.min_size, 1.0));
        }
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert_eq!(from_csv("").unwrap_err(), TraceParseError::BadHeader);
        assert_eq!(
            from_csv("wrong,header").unwrap_err(),
            TraceParseError::BadHeader
        );
        let hdr =
            "id,arrival_s,lifetime_s,cpu,memory_mib,disk_mbps,net_mbps,low_priority,min_fraction";
        assert_eq!(
            from_csv(&format!("{hdr}\n1,2,3")).unwrap_err(),
            TraceParseError::BadRow(1)
        );
        assert!(matches!(
            from_csv(&format!("{hdr}\nx,0,60,1,1024,10,10,1,0.25")),
            Err(TraceParseError::BadField { column: "id", .. })
        ));
        assert!(matches!(
            from_csv(&format!("{hdr}\n1,0,60,1,1024,10,10,2,0.25")),
            Err(TraceParseError::BadField {
                column: "low_priority",
                ..
            })
        ));
        assert!(matches!(
            from_csv(&format!("{hdr}\n1,0,60,-1,1024,10,10,1,0.25")),
            Err(TraceParseError::BadField { column: "cpu", .. })
        ));
        // Blank lines are fine.
        let ok = from_csv(&format!("{hdr}\n\n1,0,60,1,1024,10,10,1,0.25\n")).expect("parses");
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn type_mix_weights_respected() {
        let reqs = TraceGenerator::new(config()).generate_until(SimTime::from_secs(3_600 * 100));
        let small = reqs.iter().filter(|r| r.type_name == "m1.small").count() as f64;
        let frac = small / reqs.len() as f64;
        assert!((frac - 0.4).abs() < 0.05, "m1.small fraction {frac}");
    }
}
