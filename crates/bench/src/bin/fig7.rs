//! Regenerates paper Figs. 7a and 7b.
fn main() {
    bench::print_run("fig7", bench::figs::fig7::run);
}
