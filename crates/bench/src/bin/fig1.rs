//! Regenerates paper Fig. 1.
fn main() {
    bench::figs::fig1::run().print();
}
