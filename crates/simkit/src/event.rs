//! Deterministic future-event list and simulation driver.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled, which keeps every
//! simulation in this workspace fully deterministic for a given seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Entry<Ev> {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Entry<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<Ev> Eq for Entry<Ev> {}

impl<Ev> PartialOrd for Entry<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<Ev> Ord for Entry<Ev> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we pop the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with stable FIFO tie-breaking.
pub struct EventQueue<Ev> {
    heap: BinaryHeap<Entry<Ev>>,
    seq: u64,
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ev> EventQueue<Ev> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Inserts `ev` to fire at instant `at`.
    pub fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    /// Returns the time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The simulation clock plus pending events; handlers use it to schedule
/// follow-up events.
pub struct Scheduler<Ev> {
    now: SimTime,
    queue: EventQueue<Ev>,
    dispatched: u64,
}

impl<Ev> Default for Scheduler<Ev> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ev> Scheduler<Ev> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedules `ev` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — scheduling into the past would make
    /// the event loop non-monotonic.
    pub fn at(&mut self, at: SimTime, ev: Ev) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, ev);
    }

    /// Schedules `ev` after a relative delay from the current time.
    pub fn after(&mut self, delay: SimDuration, ev: Ev) {
        let at = self.now + delay;
        self.queue.push(at, ev);
    }

    /// Schedules `ev` to fire immediately (at the current instant, after any
    /// already-pending events for this instant).
    pub fn immediately(&mut self, ev: Ev) {
        self.queue.push(self.now, ev);
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pops the next event and advances the clock to it.
    fn step(&mut self) -> Option<(SimTime, Ev)> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.dispatched += 1;
        Some((at, ev))
    }
}

/// Runs the simulation until the queue drains or `until` is reached.
///
/// Events with a timestamp strictly greater than `until` (when given) are
/// left in the queue, and the clock is advanced to `until`. The handler
/// receives the scheduler (to schedule more events), the event time, and the
/// event itself.
pub fn run<Ev>(
    sched: &mut Scheduler<Ev>,
    until: Option<SimTime>,
    mut handler: impl FnMut(&mut Scheduler<Ev>, SimTime, Ev),
) {
    loop {
        match sched.queue.peek_time() {
            None => break,
            Some(t) => {
                if let Some(limit) = until {
                    if t > limit {
                        sched.now = limit;
                        return;
                    }
                }
            }
        }
        // The peek above guarantees an event exists.
        let (t, ev) = sched
            .step()
            .expect("event disappeared between peek and pop");
        handler(sched, t, ev);
    }
    if let Some(limit) = until {
        if limit > sched.now {
            sched.now = limit;
        }
    }
}

/// Convenience wrapper over [`run`] with a mandatory horizon.
pub fn run_until<Ev>(
    sched: &mut Scheduler<Ev>,
    until: SimTime,
    handler: impl FnMut(&mut Scheduler<Ev>, SimTime, Ev),
) {
    run(sched, Some(until), handler);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn scheduler_advances_clock() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.after(SimDuration::from_secs(5), 1);
        s.at(SimTime::from_secs(2), 2);
        let mut order = Vec::new();
        run(&mut s, None, |_, t, ev| order.push((t, ev)));
        assert_eq!(
            order,
            vec![(SimTime::from_secs(2), 2), (SimTime::from_secs(5), 1)]
        );
        assert_eq!(s.now(), SimTime::from_secs(5));
        assert_eq!(s.dispatched(), 2);
    }

    #[test]
    fn handler_can_reschedule() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.immediately(0);
        let mut count = 0u32;
        run(&mut s, None, |s, _, ev| {
            count += 1;
            if ev < 4 {
                s.after(SimDuration::from_secs(1), ev + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(s.now(), SimTime::from_secs(4));
    }

    #[test]
    fn horizon_stops_and_preserves_future_events() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.at(SimTime::from_secs(1), 1);
        s.at(SimTime::from_secs(10), 2);
        let mut seen = Vec::new();
        run_until(&mut s, SimTime::from_secs(5), |_, _, ev| seen.push(ev));
        assert_eq!(seen, vec![1]);
        assert_eq!(s.now(), SimTime::from_secs(5));
        assert_eq!(s.pending(), 1);
        // Resuming picks the leftover event back up.
        run(&mut s, None, |_, _, ev| seen.push(ev));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn empty_run_advances_to_horizon() {
        let mut s: Scheduler<u32> = Scheduler::new();
        run_until(&mut s, SimTime::from_secs(7), |_, _, _| {});
        assert_eq!(s.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.at(SimTime::from_secs(1), 1);
        run(&mut s, None, |s, _, _| {
            s.at(SimTime::ZERO, 9);
        });
    }
}
