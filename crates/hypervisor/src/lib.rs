//! Simulated virtualization substrate for resource deflation.
//!
//! The paper's prototype drives KVM through libvirt, hot-(un)plugs
//! resources through a QEMU guest agent, and overcommits through Linux
//! cgroups (§5). None of that stack is available in this environment, so
//! this crate provides a faithful simulation of the same interfaces and
//! failure modes:
//!
//! * [`guest::GuestModel`] — the guest OS: visible resources, free/used
//!   memory and page cache, online vCPUs, and *best-effort* hot-unplug with
//!   the paper's failure modes (integral vCPUs only, at least one vCPU
//!   stays online, pinned vCPUs refuse to unplug, memory fragmentation
//!   limits unpluggable memory, disk/NIC never unplug).
//! * [`backend::HvBackend`] — hypervisor-level overcommitment: CPU shares,
//!   memory limits with host swapping, disk/network throttling, with an
//!   incremental memory-reclaim control loop.
//! * [`latency::LatencyModel`] — how long each mechanism takes; memory
//!   dominates (Fig. 8b).
//! * [`vm::Vm`] — a deflatable VM binding a guest and a backend, exposing
//!   the [`vm::VmResourceView`] that application performance models consume
//!   (effective CPUs, CPU overcommit ratio for lock-holder-preemption
//!   penalties, swapped memory, ...).
//! * [`server::PhysicalServer`] — a host with capacity accounting, and
//!   [`server::LocalController`] — the per-server deflation controller that
//!   turns a resource demand into concurrent per-VM cascade deflations
//!   (proportional policy + preemption fallback).
//! * [`session::ReclaimSession`] — the linear-typestate wrapper every
//!   multi-VM reclamation flows through: each deflation/preemption/
//!   reinflation is a typed step, and the session must be consumed by
//!   exactly one of `commit()` / `rollback()` (a leak rolls back and is
//!   counted; debug builds panic).
//! * [`migration::MigrationSession`] — the two-server extension:
//!   reserve capacity on a destination, plan an analytic pre-copy
//!   schedule from the guest's dirty-page churn, then commit the move
//!   or roll the reservation back under the same Drop-guard contract.

pub mod backend;
pub mod burstable;
pub mod guest;
pub mod latency;
pub mod migration;
pub mod server;
pub mod session;
pub mod vm;

pub use backend::HvBackend;
pub use burstable::{BurstableParams, CreditModel};
pub use guest::{GuestConfig, GuestModel, MemoryMechanism};
pub use latency::LatencyModel;
pub use migration::{
    precopy_schedule, MigrationConfig, MigrationReport, MigrationSession, ParkedMigration,
    PrecopyPlan,
};
pub use server::{LocalController, PhysicalServer, ReclaimReport, ServerAggregates, VmFaults};
pub use session::{leaked_sessions, ReclaimSession, ReclaimStep, RollbackReport};
pub use vm::{Vm, VmPriority, VmResourceView};
