//! Property tests for `VmState` swap accounting: under arbitrary
//! sequences of unplug / hot-plug / overcommit / balloon / usage / page
//! cache / blind-swap updates, the memory bookkeeping never goes
//! negative, never swaps more than the application's RSS, and always
//! drops page cache before resorting to pressure swap.

use deflate_core::{GuestOs, ResourceKind, ResourceVector};
use hypervisor::guest::{GuestConfig, GuestModel, MemoryMechanism, VmState};
use hypervisor::LatencyModel;
use proptest::prelude::*;
use simkit::SimTime;

const SPEC_MEM: f64 = 16_384.0;

fn spec() -> ResourceVector {
    ResourceVector::new(4.0, SPEC_MEM, 200.0, 1_000.0)
}

/// One randomized mutation of the guest state. `a` and `b` are raw
/// amounts in [0, 1], scaled per operation.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: f64,
}

fn apply(g: &mut GuestModel, op: Op) {
    let st = g.state();
    match op.kind % 6 {
        0 => {
            // Application RSS moves anywhere in [0, 1.2 × spec] — the
            // overshoot exercises the OOM / forced-swap regime.
            let mut st = st.borrow_mut();
            st.usage.memory_mb = op.a * SPEC_MEM * 1.2;
            st.recompute_swap();
        }
        1 => {
            // OS-level unplug (memory + sometimes a vCPU).
            let target = ResourceVector::new((op.a * 4.0).floor(), op.a * SPEC_MEM, 0.0, 0.0);
            g.try_unplug(SimTime::ZERO, &target, None);
        }
        2 => {
            // Hot-plug back a chunk of whatever was taken.
            let amount = ResourceVector::new(4.0, op.a * SPEC_MEM, 0.0, 0.0);
            g.hot_plug(SimTime::ZERO, &amount);
        }
        3 => {
            // Hypervisor overcommitment moves within [0, visible].
            let mut st = st.borrow_mut();
            let visible = st.visible_memory_mb();
            st.overcommitted = st.overcommitted.with(ResourceKind::Memory, op.a * visible);
            st.recompute_swap();
        }
        4 => {
            // I/O grows the page cache; recompute clamps it to room.
            let mut st = st.borrow_mut();
            st.page_cache_mb += op.a * 4_096.0;
            st.recompute_swap();
        }
        _ => {
            // Black-box host reclamation blindly swaps app pages.
            let mut st = st.borrow_mut();
            st.blind_swapped_mb += op.a * 4_096.0;
            st.recompute_swap();
        }
    }
}

fn assert_swap_invariants(g: &GuestModel) {
    let st = g.state();
    let st = st.borrow();
    assert!(st.swapped_mb >= 0.0, "negative swap: {}", st.swapped_mb);
    assert!(
        st.blind_swapped_mb >= 0.0,
        "negative blind swap: {}",
        st.blind_swapped_mb
    );
    assert!(
        st.page_cache_mb >= 0.0,
        "negative page cache: {}",
        st.page_cache_mb
    );
    assert!(
        st.ballooned_mb >= 0.0,
        "negative balloon: {}",
        st.ballooned_mb
    );
    // Never more on the swap device than the application has resident.
    assert!(
        st.swapped_mb + st.blind_swapped_mb <= st.usage.memory_mb + 1e-6,
        "swapped {} + blind {} > RSS {}",
        st.swapped_mb,
        st.blind_swapped_mb,
        st.usage.memory_mb
    );
    // Page cache drops before pressure swap: any pressure swap implies
    // the cache was squeezed to zero, and the cache never exceeds the
    // room left after the app's RSS.
    if st.swapped_mb > 1e-9 {
        assert!(
            st.page_cache_mb <= 1e-6,
            "pressure swap {} with page cache {} remaining",
            st.swapped_mb,
            st.page_cache_mb
        );
    }
    let room = (st.effective_memory_mb() - st.usage.memory_mb).max(0.0);
    assert!(
        st.page_cache_mb <= room + 1e-6,
        "page cache {} exceeds room {}",
        st.page_cache_mb,
        room
    );
    // Pressure swap is exactly the RSS overflow past effective memory.
    let overflow = (st.usage.memory_mb - st.effective_memory_mb()).max(0.0);
    assert!(
        (st.swapped_mb - overflow).abs() < 1e-6,
        "swap {} != overflow {}",
        st.swapped_mb,
        overflow
    );
}

fn run_sequence(raw: &[(u8, f64)], force_unplug: bool, balloon: bool) {
    let cfg = GuestConfig {
        force_unplug,
        memory_mechanism: if balloon {
            MemoryMechanism::Balloon
        } else {
            MemoryMechanism::Hotplug
        },
        ..GuestConfig::default()
    };
    let mut g = GuestModel::new(VmState::shared(spec()), cfg, LatencyModel::default());
    for &(kind, a) in raw {
        apply(&mut g, Op { kind, a });
        assert_swap_invariants(&g);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn swap_invariants_hold_under_random_sequences(
        ops in prop::collection::vec((0u8..6, 0.0f64..1.0), 1..60),
        mode in 0u8..4,
    ) {
        run_sequence(&ops, mode & 1 != 0, mode & 2 != 0);
    }
}

#[test]
fn forced_unplug_can_oom_but_never_negative() {
    // Deterministic regression: force-unplug past the app's RSS, then
    // plug back — accounting stays sane through the OOM regime.
    let cfg = GuestConfig {
        force_unplug: true,
        ..GuestConfig::default()
    };
    let mut g = GuestModel::new(VmState::shared(spec()), cfg, LatencyModel::default());
    g.state().borrow_mut().usage.memory_mb = 12_000.0;
    g.state().borrow_mut().recompute_swap();
    g.try_unplug(SimTime::ZERO, &ResourceVector::memory(15_000.0), None);
    assert_swap_invariants(&g);
    assert!(g.state().borrow().is_oom());
    g.hot_plug(SimTime::ZERO, &ResourceVector::memory(15_000.0));
    assert_swap_invariants(&g);
    assert!(!g.state().borrow().is_oom());
}
