//! Byte-identity pins for the reclamation paths.
//!
//! Four small deterministic runs — plain, chaos (server crashes +
//! agent faults), guarded distress (emergency reinflation + OOM
//! kills), and distress with live migration (rescue moves and their
//! reserve–copy–commit accounting) — have their full run summaries
//! committed under
//! `tests/golden/`. Any refactor of the reclamation machinery (the
//! `ReclaimSession` commit/rollback paths, the cascade, placement) must
//! reproduce these summaries byte for byte; a behavioural change that
//! is *supposed* to move numbers regenerates them explicitly with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p cluster --test golden_summary
//! ```
//!
//! and the diff is reviewed like any other code change.

use cluster::distress::DistressConfig;
use cluster::manager::ClusterManagerConfig;
use cluster::simulate::{run_cluster_sim, ClusterSimConfig};
use cluster::traces::TraceConfig;
use deflate_core::ResourceVector;
use simkit::{FaultPlan, SimDuration};

fn base_cfg() -> ClusterSimConfig {
    ClusterSimConfig {
        sharding: Default::default(),
        manager: ClusterManagerConfig {
            n_servers: 20,
            ..ClusterManagerConfig::default()
        },
        trace: TraceConfig {
            arrivals_per_hour: 150.0,
            lifetime_median_mins: 120.0,
            ..TraceConfig::default()
        },
        horizon: SimDuration::from_hours(6),
    }
}

/// Loaded enough that launches deflate, reject, and preempt.
fn plain_cfg() -> ClusterSimConfig {
    base_cfg()
}

/// Server crashes, dead agents, message loss and hotplug stalls: the
/// fault-recovery reclamation paths.
fn chaos_cfg() -> ClusterSimConfig {
    let mut cfg = base_cfg();
    cfg.manager.faults = FaultPlan::chaos(7).scaled(2.0);
    cfg
}

/// Memory-bound guarded distress: emergency donor harvesting, guest OOM
/// kills with survivor reinflation, breakers and working-set floors.
fn distress_cfg() -> ClusterSimConfig {
    let mut cfg = base_cfg();
    cfg.manager.server_capacity = ResourceVector::new(16.0, 32_768.0, 400.0, 800.0);
    cfg.manager.distress = DistressConfig::guarded();
    cfg
}

/// The distress run with live migration on top: rescue migrations,
/// drain-before-crash plumbing (armed but idle without faults), and the
/// reserve–copy–commit accounting.
fn migration_cfg() -> ClusterSimConfig {
    let mut cfg = distress_cfg();
    cfg.manager.migration = cluster::MigrationPolicy::enabled();
    cfg
}

fn check(name: &str, cfg: &ClusterSimConfig, golden: &str) {
    let got = run_cluster_sim(cfg).summary.to_pretty();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{name}.json", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    assert_eq!(
        got.trim(),
        golden.trim(),
        "{name}: run summary diverged from tests/golden/{name}.json — \
         if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn plain_summary_matches_golden() {
    check("plain", &plain_cfg(), include_str!("golden/plain.json"));
}

#[test]
fn chaos_summary_matches_golden() {
    check("chaos", &chaos_cfg(), include_str!("golden/chaos.json"));
}

#[test]
fn distress_summary_matches_golden() {
    check(
        "distress",
        &distress_cfg(),
        include_str!("golden/distress.json"),
    );
}

#[test]
fn migration_summary_matches_golden() {
    check(
        "migration",
        &migration_cfg(),
        include_str!("golden/migration.json"),
    );
}
