//! A web-server cluster with a deflation-aware load balancer.
//!
//! Footnote 2 of the paper: "Web-application clusters are another
//! popular cloud workload, and can use a deflation-aware load-balancer
//! for cascade deflation", and §3.2.1: deflated web servers should
//! "adjust the load-balancing rules accordingly (serve less traffic
//! from deflated servers)".
//!
//! The cluster holds one [`WebServerApp`] per VM and
//! splits the offered load across them:
//!
//! [`WebServerApp`]: crate::WebServerApp
//!
//! * [`LbPolicy::Uniform`] — 1/N each, deflation-oblivious: a deflated
//!   member becomes a hotspot and drops requests while others idle;
//! * [`LbPolicy::DeflationAware`] — weights proportional to each
//!   member's current effective capacity.

use hypervisor::VmResourceView;

use crate::webserver::WebServerApp;

/// How the load balancer splits traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbPolicy {
    /// Equal shares, regardless of deflation.
    Uniform,
    /// Shares proportional to effective capacity.
    DeflationAware,
}

/// A load-balanced cluster of web servers.
pub struct WebCluster {
    members: Vec<WebServerApp>,
    policy: LbPolicy,
}

impl WebCluster {
    /// Creates a cluster from its members.
    pub fn new(members: Vec<WebServerApp>, policy: LbPolicy) -> Self {
        assert!(!members.is_empty(), "a cluster needs members");
        WebCluster { members, policy }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when the cluster has no members (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member applications.
    pub fn members(&self) -> &[WebServerApp] {
        &self.members
    }

    /// Per-member capacity (kreq/s) under the given views.
    fn capacities(&self, views: &[VmResourceView]) -> Vec<f64> {
        assert_eq!(views.len(), self.members.len(), "one view per member");
        self.members
            .iter()
            .zip(views)
            .map(|(m, v)| m.throughput_kreq(v))
            .collect()
    }

    /// Traffic shares for the offered load.
    pub fn shares(&self, offered_kreq: f64, views: &[VmResourceView]) -> Vec<f64> {
        let caps = self.capacities(views);
        match self.policy {
            LbPolicy::Uniform => {
                vec![offered_kreq / self.members.len() as f64; self.members.len()]
            }
            LbPolicy::DeflationAware => {
                let total: f64 = caps.iter().sum();
                if total <= 0.0 {
                    return vec![0.0; self.members.len()];
                }
                caps.iter().map(|c| offered_kreq * c / total).collect()
            }
        }
    }

    /// Requests actually served (each member serves at most its
    /// capacity; excess share is dropped).
    pub fn served_kreq(&self, offered_kreq: f64, views: &[VmResourceView]) -> f64 {
        let caps = self.capacities(views);
        self.shares(offered_kreq, views)
            .iter()
            .zip(&caps)
            .map(|(share, cap)| share.min(*cap))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webserver::WebServerParams;
    use deflate_core::{CascadeConfig, ResourceVector, VmId};
    use hypervisor::{Vm, VmPriority};
    use simkit::SimTime;

    fn vm_spec() -> ResourceVector {
        ResourceVector::new(4.0, 8_192.0, 200.0, 1_000.0)
    }

    /// Builds a 4-member cluster; member 0 is deflated by `fraction`.
    fn cluster_with_hotspot(policy: LbPolicy, fraction: f64) -> (WebCluster, Vec<VmResourceView>) {
        let mut members = Vec::new();
        let mut views = Vec::new();
        for i in 0..4 {
            let app = WebServerApp::new(WebServerParams::default());
            let vm = Vm::new(VmId(i), vm_spec(), VmPriority::Low);
            app.init_usage(&vm.state());
            let agent = app.agent(vm.state());
            let mut vm = vm.with_agent(Box::new(agent));
            if i == 0 && fraction > 0.0 {
                let _ = vm.deflate(
                    SimTime::ZERO,
                    &vm_spec().scale(fraction),
                    &CascadeConfig::FULL,
                );
            }
            views.push(vm.view());
            members.push(app);
        }
        (WebCluster::new(members, policy), views)
    }

    #[test]
    fn undeflated_cluster_serves_everything() {
        for policy in [LbPolicy::Uniform, LbPolicy::DeflationAware] {
            let (c, views) = cluster_with_hotspot(policy, 0.0);
            // 4 members × 96 kreq/s capacity.
            let served = c.served_kreq(300.0, &views);
            assert!((served - 300.0).abs() < 1e-6, "{policy:?}: {served}");
        }
    }

    #[test]
    fn aware_lb_routes_around_the_deflated_member() {
        let offered = 330.0; // Near aggregate capacity.
        let (uniform, vu) = cluster_with_hotspot(LbPolicy::Uniform, 0.5);
        let (aware, va) = cluster_with_hotspot(LbPolicy::DeflationAware, 0.5);
        let served_uniform = uniform.served_kreq(offered, &vu);
        let served_aware = aware.served_kreq(offered, &va);
        assert!(
            served_aware > served_uniform * 1.1,
            "aware {served_aware} uniform {served_uniform}"
        );
    }

    #[test]
    fn aware_shares_proportional_to_capacity() {
        let (aware, views) = cluster_with_hotspot(LbPolicy::DeflationAware, 0.5);
        let shares = aware.shares(100.0, &views);
        // Member 0 is deflated by half: it receives roughly half the
        // share of the healthy members.
        assert!(shares[0] < shares[1] * 0.7, "shares {shares:?}");
        assert!((shares.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_cluster_serves_nothing() {
        let (aware, mut views) = cluster_with_hotspot(LbPolicy::DeflationAware, 0.0);
        for v in &mut views {
            v.oom = true;
        }
        assert_eq!(aware.served_kreq(100.0, &views), 0.0);
    }
}
