//! The paper's four Spark workloads (Table 2) as ready-made jobs.
//!
//! * **ALS** — `mllib` Alternating Least Squares: iterative and
//!   *shuffle-heavy* (each iteration alternates two wide factor-update
//!   stages), so self-deflation triggers deep recursive recomputation and
//!   the policy prefers VM-level deflation (Fig. 6a).
//! * **K-means** — `mllib` dense clustering: a cached input re-scanned by
//!   a narrow map each iteration plus a tiny aggregation; task kills lose
//!   little, so self-deflation wins (Fig. 6b).
//! * **CNN / RNN** — BigDL synchronous DNN training (ResNet on CIFAR-10 /
//!   character RNN on Shakespeare): inelastic, restart-on-kill jobs where
//!   only VM-level deflation avoids checkpoint restarts (Figs. 6c, 6d).

use simkit::SimDuration;

use crate::exec::{BspSimulator, DeflationEvent, DeflationMode, RunResult, WorkerPool};
use crate::policy::{DeflationDecision, REstimateKind};
use crate::rdd::{DagBuilder, RddDag};
use crate::training::{TrainingJob, TrainingParams};

/// A runnable paper workload.
pub enum SparkWorkload {
    /// A DAG job executed by the BSP simulator.
    Dag {
        /// Workload name (for tables).
        name: &'static str,
        /// The lineage graph.
        dag: RddDag,
        /// Worker pool configuration.
        pool: WorkerPool,
    },
    /// A synchronous training job.
    Training {
        /// Workload name (for tables).
        name: &'static str,
        /// The job model.
        job: TrainingJob,
    },
}

/// Uniform summary of one run, for the figure harnesses.
#[derive(Debug, Clone, Copy)]
pub struct RunSummary {
    /// Running time normalized to the undeflated baseline.
    pub normalized: f64,
    /// The policy decision, for cascade runs.
    pub decision: Option<DeflationDecision>,
    /// Recomputed tasks (0 for training jobs, which restart instead).
    pub recomputed_tasks: usize,
}

impl SparkWorkload {
    /// The workload's name.
    pub fn name(&self) -> &'static str {
        match self {
            SparkWorkload::Dag { name, .. } => name,
            SparkWorkload::Training { name, .. } => name,
        }
    }

    /// Number of worker VMs.
    pub fn workers(&self) -> usize {
        match self {
            SparkWorkload::Dag { pool, .. } => pool.len(),
            SparkWorkload::Training { job, .. } => job.params().n_workers,
        }
    }

    /// Runs the workload under a deflation mode and event, with the
    /// paper's default sync-heuristic `r` estimator.
    pub fn run(
        &self,
        mode: DeflationMode,
        event: Option<&DeflationEvent>,
        seed: u64,
    ) -> RunSummary {
        self.run_with_estimator(mode, event, seed, REstimateKind::SyncHeuristic)
    }

    /// Runs the workload with an explicit recomputation estimator for the
    /// cascade policy (training jobs are fully synchronous, so the
    /// estimator only affects DAG workloads).
    pub fn run_with_estimator(
        &self,
        mode: DeflationMode,
        event: Option<&DeflationEvent>,
        seed: u64,
        estimator: REstimateKind,
    ) -> RunSummary {
        match self {
            SparkWorkload::Dag { dag, pool, .. } => {
                let mut sim = BspSimulator::new(dag, pool.clone(), seed);
                let r: RunResult = sim.run_with_estimator(mode, event, estimator);
                RunSummary {
                    normalized: r.normalized(),
                    decision: r.decision,
                    recomputed_tasks: r.recomputed_tasks,
                }
            }
            SparkWorkload::Training { job, .. } => {
                let r = job.run(mode, event);
                RunSummary {
                    normalized: r.normalized(),
                    decision: r.decision,
                    recomputed_tasks: 0,
                }
            }
        }
    }
}

/// Standard evaluation pool: 8 worker VMs with 4 task slots each
/// (the paper's 8-worker/4-vCPU cluster).
pub fn standard_pool() -> WorkerPool {
    WorkerPool::uniform(8, 4.0)
}

/// ALS on a 100 GB dataset: shuffle-heavy iterative factorization.
pub fn als() -> SparkWorkload {
    let mut b = DagBuilder::new();
    let mut h = b.source("ratings", 64, SimDuration::from_secs(8));
    for i in 0..5 {
        h = b.wide(
            &format!("user-factors-{i}"),
            h,
            64,
            SimDuration::from_secs(6),
        );
        h = b.wide(
            &format!("item-factors-{i}"),
            h,
            64,
            SimDuration::from_secs(6),
        );
    }
    SparkWorkload::Dag {
        name: "ALS",
        dag: b.build(h),
        pool: standard_pool(),
    }
}

/// Dense K-means on a 50 GB dataset: cached input, narrow per-iteration
/// scans, tiny aggregations.
pub fn kmeans() -> SparkWorkload {
    let mut b = DagBuilder::new();
    let src = b
        .source("points", 64, SimDuration::from_secs(6))
        .cache(&mut b);
    let mut last = src;
    for i in 0..10 {
        let m = b.narrow(&format!("assign-{i}"), src, SimDuration::from_secs(3));
        last = b.wide(
            &format!("update-centers-{i}"),
            m,
            1,
            SimDuration::from_millis(200),
        );
    }
    SparkWorkload::Dag {
        name: "K-means",
        dag: b.build(last),
        pool: standard_pool(),
    }
}

/// ResNet CNN training on CIFAR-10 with Spark-BigDL (batch 720,
/// depth 20): heavily synchronous, checkpoint only at job start.
pub fn cnn() -> SparkWorkload {
    SparkWorkload::Training {
        name: "CNN",
        job: TrainingJob::new(TrainingParams::default()),
    }
}

/// Character-RNN training on the Shakespeare corpus with Spark-BigDL:
/// synchronous but with more frequent model checkpoints.
pub fn rnn() -> SparkWorkload {
    let params = TrainingParams {
        compute_frac: 0.25,
        restarted_compute_frac: 0.45,
        checkpoint_interval_frac: 0.25,
        checkpoint_overhead: 0.15,
        ..TrainingParams::default()
    };
    SparkWorkload::Training {
        name: "RNN",
        job: TrainingJob::new(params),
    }
}

/// PageRank (GraphX-style, Table 2's "graph analytics" row): cached
/// edges re-joined with the rank vector every iteration — wide
/// contributions and wide rank updates, but the big edge input itself is
/// recoverable from cache/HDFS, so recomputation depth sits between
/// ALS's and K-means'.
pub fn pagerank() -> SparkWorkload {
    let mut b = DagBuilder::new();
    let edges = b
        .source("edges", 64, SimDuration::from_secs(10))
        .cache(&mut b);
    let mut ranks = b.narrow("init-ranks", edges, SimDuration::from_millis(500));
    for i in 0..6 {
        let contrib = b.join(
            &format!("contrib-{i}"),
            edges,
            ranks,
            64,
            SimDuration::from_secs(4),
        );
        ranks = b.wide(
            &format!("ranks-{i}"),
            contrib,
            64,
            SimDuration::from_secs(1),
        );
    }
    SparkWorkload::Dag {
        name: "PageRank",
        dag: b.build(ranks),
        pool: standard_pool(),
    }
}

/// TeraSort: read → one giant range-partitioning shuffle → sorted write.
/// Almost all the job's synchronous time sits in a single shuffle, so
/// the right mechanism flips with the deflation's timing.
pub fn terasort() -> SparkWorkload {
    let mut b = DagBuilder::new();
    let input = b.source("input", 128, SimDuration::from_secs(5));
    let sorted = b.wide("range-partition", input, 128, SimDuration::from_secs(7));
    let written = b.narrow("write", sorted, SimDuration::from_secs(2));
    SparkWorkload::Dag {
        name: "TeraSort",
        dag: b.build(written),
        pool: standard_pool(),
    }
}

/// All four evaluation workloads (Fig. 6 order).
pub fn all_workloads() -> Vec<SparkWorkload> {
    vec![als(), kmeans(), cnn(), rnn()]
}

/// The Fig. 6 workloads plus the two extended ones (PageRank, TeraSort).
pub fn extended_workloads() -> Vec<SparkWorkload> {
    vec![als(), kmeans(), cnn(), rnn(), pagerank(), terasort()]
}

/// The paper's Fig. 6 deflation event: every worker deflated by
/// `fraction`, roughly 50 % into the run, with the small per-VM jitter a
/// real cascade produces (per-VM reclamation outcomes never match
/// exactly).
pub fn fig6_event(workers: usize, fraction: f64) -> DeflationEvent {
    let mut fractions = Vec::with_capacity(workers);
    for i in 0..workers {
        // Deterministic ±4 % jitter around the requested fraction.
        let jitter = ((i * 2654435761) % 9) as f64 / 100.0 - 0.04;
        fractions.push((fraction + jitter).clamp(0.0, 0.95));
    }
    DeflationEvent {
        at_progress: 0.5,
        fractions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ChosenMechanism;

    #[test]
    fn workload_inventory() {
        let all = all_workloads();
        let names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["ALS", "K-means", "CNN", "RNN"]);
        assert!(all.iter().all(|w| w.workers() == 8));
    }

    #[test]
    fn als_prefers_vm_level() {
        let w = als();
        let ev = fig6_event(8, 0.5);
        let r = w.run(DeflationMode::Cascade, Some(&ev), 7);
        assert_eq!(
            r.decision.expect("decides").chosen,
            ChosenMechanism::VmLevel
        );
        // And VM-level is genuinely cheaper than self-deflation.
        let rv = w.run(DeflationMode::VmLevel, Some(&ev), 7);
        let rs = w.run(DeflationMode::SelfDeflation, Some(&ev), 7);
        assert!(
            rs.normalized > rv.normalized,
            "self {} vm {}",
            rs.normalized,
            rv.normalized
        );
        assert!(rs.recomputed_tasks > 50, "ALS recomputation is deep");
    }

    #[test]
    fn kmeans_prefers_self_deflation() {
        let w = kmeans();
        let ev = fig6_event(8, 0.5);
        let r = w.run(DeflationMode::Cascade, Some(&ev), 7);
        assert_eq!(
            r.decision.expect("decides").chosen,
            ChosenMechanism::SelfDeflation
        );
        let rv = w.run(DeflationMode::VmLevel, Some(&ev), 7);
        let rs = w.run(DeflationMode::SelfDeflation, Some(&ev), 7);
        assert!(
            rs.normalized < rv.normalized,
            "self {} vm {}",
            rs.normalized,
            rv.normalized
        );
    }

    #[test]
    fn training_prefers_vm_level_and_beats_preemption_2x() {
        for w in [cnn(), rnn()] {
            let ev = fig6_event(8, 0.5);
            let rc = w.run(DeflationMode::Cascade, Some(&ev), 7);
            assert_eq!(
                rc.decision.expect("decides").chosen,
                ChosenMechanism::VmLevel,
                "{}",
                w.name()
            );
            let rp = w.run(DeflationMode::Preemption, Some(&ev), 7);
            assert!(
                (rp.normalized - 1.0) / (rc.normalized - 1.0) > 2.0,
                "{}: cascade {} preempt {}",
                w.name(),
                rc.normalized,
                rp.normalized
            );
        }
    }

    #[test]
    fn fig6_event_has_jitter_but_right_mean() {
        let ev = fig6_event(8, 0.5);
        let mean: f64 = ev.fractions.iter().sum::<f64>() / 8.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
        let max = ev.fractions.iter().copied().fold(0.0f64, f64::max);
        let min = ev.fractions.iter().copied().fold(1.0f64, f64::min);
        assert!(max > min, "jitter required");
    }

    #[test]
    fn extended_workloads_run_under_every_mode() {
        for w in [pagerank(), terasort()] {
            let ev = fig6_event(8, 0.5);
            let base = w.run(DeflationMode::None, None, 3);
            assert!((base.normalized - 1.0).abs() < 1e-9, "{}", w.name());
            for mode in [
                DeflationMode::VmLevel,
                DeflationMode::SelfDeflation,
                DeflationMode::Preemption,
                DeflationMode::Cascade,
            ] {
                let r = w.run(mode, Some(&ev), 3);
                assert!(
                    r.normalized >= 1.0 && r.normalized < 5.0,
                    "{} {:?}: {}",
                    w.name(),
                    mode,
                    r.normalized
                );
            }
        }
    }

    #[test]
    fn pagerank_is_shuffle_bound_enough_for_vm_level() {
        let w = pagerank();
        let ev = fig6_event(8, 0.5);
        let r = w.run(DeflationMode::Cascade, Some(&ev), 3);
        assert_eq!(
            r.decision.expect("decides").chosen,
            ChosenMechanism::VmLevel
        );
        // And cascade beats preemption comfortably.
        let rp = w.run(DeflationMode::Preemption, Some(&ev), 3);
        assert!(rp.normalized > r.normalized);
    }

    #[test]
    fn terasort_cascade_never_regrets_much() {
        let w = terasort();
        for at in [0.2, 0.5, 0.8] {
            let mut ev = fig6_event(8, 0.5);
            ev.at_progress = at;
            let rc = w.run(DeflationMode::Cascade, Some(&ev), 3).normalized;
            let rv = w.run(DeflationMode::VmLevel, Some(&ev), 3).normalized;
            let rs = w.run(DeflationMode::SelfDeflation, Some(&ev), 3).normalized;
            assert!(
                rc <= rv.min(rs) * 1.12,
                "at {at}: cascade {rc} vs best {}",
                rv.min(rs)
            );
        }
    }

    #[test]
    fn preemption_worst_for_als() {
        let w = als();
        let ev = fig6_event(8, 0.5);
        let rp = w.run(DeflationMode::Preemption, Some(&ev), 7);
        let rs = w.run(DeflationMode::SelfDeflation, Some(&ev), 7);
        // "recomputation costs for self-deflation are lower ... compared
        // to preemption, because self-deflation allows recovering some
        // RDD partitions from Spark's RDD cache" (§6.2).
        assert!(
            rp.normalized >= rs.normalized,
            "preempt {} self {}",
            rp.normalized,
            rs.normalized
        );
    }
}
