//! A deflatable virtual machine: guest model + hypervisor backend +
//! optional application deflation agent.

use deflate_core::{
    cascade, ApplicationAgent, CascadeConfig, CascadeOutcome, ResourceVector, VmId,
};
use simkit::SimTime;

use crate::backend::HvBackend;
use crate::guest::{GuestConfig, GuestModel, SharedVmState, VmState};
use crate::latency::LatencyModel;

/// Scheduling class of a VM (paper §2.1): high-priority VMs are never
/// deflated or preempted; low-priority (transient) VMs are deflatable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmPriority {
    /// Non-deflatable, non-preemptible.
    High,
    /// Deflatable transient VM.
    Low,
}

/// A point-in-time view of a VM's resources, consumed by application
/// performance models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmResourceView {
    /// Nominal allocation.
    pub spec: ResourceVector,
    /// What the guest OS sees (after hot-unplug).
    pub visible: ResourceVector,
    /// What the application can actually use (after overcommitment).
    pub effective: ResourceVector,
    /// Online vCPUs.
    pub online_vcpus: u32,
    /// vCPUs per effective core (≥ 1); >1 means the hypervisor is
    /// time-multiplexing vCPUs and lock-holder preemption can occur.
    pub cpu_overcommit_ratio: f64,
    /// Host-swapped memory (MiB).
    pub swapped_mb: f64,
    /// Whether the guest is out of memory (forced unplug pushed visible
    /// memory below the application's RSS); the app would be OOM-killed.
    pub oom: bool,
    /// Deflation fraction per dimension (`1 − effective/spec`).
    pub deflation: ResourceVector,
}

/// A deflatable VM.
pub struct Vm {
    id: VmId,
    priority: VmPriority,
    min: ResourceVector,
    /// Application-reported working-set floor (MiB). Honored only when a
    /// cascade runs with `CascadeConfig::working_set_floor`; unlike `min`
    /// it is advisory, so it never feeds preemption decisions.
    memory_floor_mb: f64,
    state: SharedVmState,
    guest: GuestModel,
    backend: HvBackend,
    agent: Option<Box<dyn ApplicationAgent>>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("spec", &self.state.borrow().spec)
            .field("agent", &self.agent.as_ref().map(|a| a.name().to_string()))
            .finish()
    }
}

impl Vm {
    /// Creates a VM with the default guest/latency models and no agent.
    pub fn new(id: VmId, spec: ResourceVector, priority: VmPriority) -> Self {
        Vm::with_models(
            id,
            spec,
            priority,
            GuestConfig::default(),
            LatencyModel::default(),
        )
    }

    /// Creates a VM with explicit guest and latency models.
    pub fn with_models(
        id: VmId,
        spec: ResourceVector,
        priority: VmPriority,
        guest_cfg: GuestConfig,
        latency: LatencyModel,
    ) -> Self {
        let state = VmState::shared(spec);
        let guest = GuestModel::new(SharedVmState::clone(&state), guest_cfg, latency);
        let backend = HvBackend::new(SharedVmState::clone(&state), latency);
        Vm {
            id,
            priority,
            min: ResourceVector::ZERO,
            memory_floor_mb: 0.0,
            state,
            guest,
            backend,
            agent: None,
        }
    }

    /// Attaches an application deflation agent (Table 1); returns `self`
    /// for builder-style construction.
    pub fn with_agent(mut self, agent: Box<dyn ApplicationAgent>) -> Self {
        self.agent = Some(agent);
        self
    }

    /// Sets the minimum size below which the VM must be preempted instead
    /// of deflated (§5; defaults to zero).
    pub fn with_min(mut self, min: ResourceVector) -> Self {
        self.min = min;
        self
    }

    /// Sets the application's working-set floor (MiB): the memory footprint
    /// below which the app thrashes or OOMs. Only cascades configured with
    /// `working_set_floor` refuse to cut below it.
    pub fn with_memory_floor(mut self, floor_mb: f64) -> Self {
        self.memory_floor_mb = floor_mb.max(0.0);
        self
    }

    /// The VM's identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The VM's priority class.
    pub fn priority(&self) -> VmPriority {
        self.priority
    }

    /// The VM's minimum size.
    pub fn min_size(&self) -> ResourceVector {
        self.min
    }

    /// The application's working-set floor (MiB; zero when unset).
    pub fn memory_floor_mb(&self) -> f64 {
        self.memory_floor_mb
    }

    /// The VM's nominal allocation.
    pub fn spec(&self) -> ResourceVector {
        self.state.borrow().spec
    }

    /// The VM's current effective allocation.
    pub fn effective(&self) -> ResourceVector {
        self.state.borrow().effective()
    }

    /// Whether this VM can be deflated at all.
    pub fn deflatable(&self) -> bool {
        self.priority == VmPriority::Low
    }

    /// How much can still be reclaimed before hitting the minimum size.
    pub fn deflatable_amount(&self) -> ResourceVector {
        if self.deflatable() {
            self.effective().saturating_sub(&self.min)
        } else {
            ResourceVector::ZERO
        }
    }

    /// Shared VM state, for wiring application models.
    pub fn state(&self) -> SharedVmState {
        SharedVmState::clone(&self.state)
    }

    /// Snapshot of the guest's hot-plug/unplug counters, for folding into
    /// a metrics registry.
    pub fn hotplug_stats(&self) -> crate::guest::HotplugStats {
        self.state.borrow().hotplug
    }

    /// Snapshot of the resource situation for performance models.
    pub fn view(&self) -> VmResourceView {
        let st = self.state.borrow();
        VmResourceView {
            spec: st.spec,
            visible: st.visible(),
            effective: st.effective(),
            online_vcpus: st.online_vcpus(),
            cpu_overcommit_ratio: st.cpu_overcommit_ratio(),
            swapped_mb: st.total_swapped_mb(),
            oom: st.is_oom(),
            deflation: st.deflation_fraction(),
        }
    }

    /// Runs cascade deflation against this VM.
    ///
    /// High-priority VMs are never deflated; the call returns an outcome
    /// whose shortfall equals the whole target.
    pub fn deflate(
        &mut self,
        now: SimTime,
        target: &ResourceVector,
        cfg: &CascadeConfig,
    ) -> CascadeOutcome {
        if !self.deflatable() {
            return CascadeOutcome {
                shortfall: *target,
                ..CascadeOutcome::default()
            };
        }
        // Never deflate below the minimum size.
        let mut cap = self.deflatable_amount();
        // Under a working-set-floor cascade, also refuse to cut memory
        // below the application's reported minimum footprint.
        if cfg.working_set_floor && self.memory_floor_mb > 0.0 {
            use deflate_core::ResourceKind::Memory;
            let eff_mem = self.effective().get(Memory);
            let mem_cap = (eff_mem - self.memory_floor_mb).max(0.0);
            if mem_cap < cap.get(Memory) {
                cap.set(Memory, mem_cap);
            }
        }
        let target = target.min(&cap);
        // Backoff jitter draws are per-VM: stamp this VM's identity on a
        // local copy of the config so co-located VMs desynchronize. With
        // jitter off the config is passed through untouched.
        let mut cfg = cfg;
        let stamped;
        if cfg.retry.jitter > 0.0 {
            let mut c = *cfg;
            c.retry = c.retry.for_entity(self.id.0);
            stamped = c;
            cfg = &stamped;
        }
        cascade::deflate_vm(
            now,
            &target,
            self.agent
                .as_deref_mut()
                .map(|a| a as &mut dyn ApplicationAgent),
            &mut self.guest,
            &mut self.backend,
            cfg,
        )
    }

    /// Returns `amount` of resources to the VM via the reverse cascade.
    pub fn reinflate(&mut self, now: SimTime, amount: &ResourceVector) -> ResourceVector {
        cascade::reinflate_vm(
            now,
            amount,
            self.agent
                .as_deref_mut()
                .map(|a| a as &mut dyn ApplicationAgent),
            &mut self.guest,
            &mut self.backend,
        )
    }

    /// Overall deflation fraction of the dominant dimension, for traces.
    pub fn max_deflation(&self) -> f64 {
        self.state.borrow().deflation_fraction().max_component()
    }

    /// Convenience: set application usage on the shared state.
    pub fn set_usage(&self, memory_mb: f64, busy_vcpus: f64) {
        let mut st = self.state.borrow_mut();
        st.usage.memory_mb = memory_mb;
        st.usage.busy_vcpus = busy_vcpus;
        st.recompute_swap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::ResourceKind;
    use simkit::SimDuration;

    fn spec() -> ResourceVector {
        ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0)
    }

    #[test]
    fn high_priority_never_deflates() {
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::High);
        let out = vm.deflate(
            SimTime::ZERO,
            &ResourceVector::cpu(2.0),
            &CascadeConfig::FULL,
        );
        assert!(out.total_reclaimed.is_zero());
        assert_eq!(out.shortfall, ResourceVector::cpu(2.0));
        assert!(vm.deflatable_amount().is_zero());
    }

    #[test]
    fn vm_level_deflation_meets_target() {
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
        vm.set_usage(4_096.0, 1.0);
        let target = spec().scale(0.5);
        let out = vm.deflate(SimTime::ZERO, &target, &CascadeConfig::VM_LEVEL);
        assert!(out.met_target(), "shortfall {}", out.shortfall);
        let eff = vm.effective();
        assert!(eff.approx_eq(&spec().scale(0.5), 1e-6), "eff {eff}");
    }

    #[test]
    fn deflation_respects_min_size() {
        let min = spec().scale(0.75);
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low).with_min(min);
        let out = vm.deflate(SimTime::ZERO, &spec().scale(0.5), &CascadeConfig::VM_LEVEL);
        // Only 25 % of spec was deflatable.
        assert!(out.total_reclaimed.approx_eq(&spec().scale(0.25), 1e-6));
        assert!(vm.effective().dominates(&min));
    }

    #[test]
    fn working_set_floor_caps_memory_deflation() {
        // Floor at 12 GiB: only 4 GiB of the 8 GiB memory target is
        // reclaimable under a floor-honoring cascade.
        let cfg = CascadeConfig::VM_LEVEL.with_working_set_floor(true);
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low).with_memory_floor(12_288.0);
        let out = vm.deflate(SimTime::ZERO, &ResourceVector::memory(8_192.0), &cfg);
        assert!(
            vm.effective().get(ResourceKind::Memory) >= 12_288.0 - 1e-6,
            "floor violated: {}",
            vm.effective()
        );
        assert!(out.total_reclaimed.get(ResourceKind::Memory) <= 4_096.0 + 1e-6);

        // Without the flag the floor is advisory and ignored.
        let mut vm = Vm::new(VmId(2), spec(), VmPriority::Low).with_memory_floor(12_288.0);
        let _ = vm.deflate(
            SimTime::ZERO,
            &ResourceVector::memory(8_192.0),
            &CascadeConfig::VM_LEVEL,
        );
        assert!(vm.effective().get(ResourceKind::Memory) <= 8_192.0 + 1e-6);
    }

    #[test]
    fn reinflate_restores_effective() {
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
        vm.set_usage(2_048.0, 0.5);
        let target = spec().scale(0.4);
        let _ = vm.deflate(SimTime::ZERO, &target, &CascadeConfig::VM_LEVEL);
        let before = vm.effective();
        let got = vm.reinflate(SimTime::from_secs(60), &target);
        assert!(got.approx_eq(&target, 1e-6), "got {got}");
        assert!(vm.effective().dominates(&before));
        assert!(vm.effective().approx_eq(&spec(), 1e-6));
        assert!(vm.max_deflation() < 1e-9);
    }

    #[test]
    fn view_reports_overcommit_ratio() {
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
        // Hypervisor-only CPU deflation: vCPUs stay online.
        let _ = vm.deflate(
            SimTime::ZERO,
            &ResourceVector::cpu(2.0),
            &CascadeConfig::HYPERVISOR_ONLY,
        );
        let v = vm.view();
        assert_eq!(v.online_vcpus, 4);
        assert!((v.cpu_overcommit_ratio - 2.0).abs() < 1e-9);
        assert!((v.deflation.get(ResourceKind::Cpu) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn os_level_unplug_reduces_visible() {
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
        let _ = vm.deflate(
            SimTime::ZERO,
            &ResourceVector::cpu(2.0),
            &CascadeConfig::OS_ONLY,
        );
        let v = vm.view();
        assert_eq!(v.online_vcpus, 2);
        assert!((v.cpu_overcommit_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deflate_latency_reported() {
        let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
        vm.set_usage(12_000.0, 2.0);
        let out = vm.deflate(
            SimTime::ZERO,
            &ResourceVector::memory(8_192.0),
            &CascadeConfig::VM_LEVEL,
        );
        assert!(out.latency > SimDuration::ZERO);
    }
}
