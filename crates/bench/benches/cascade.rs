//! Micro-benchmarks of the cascade deflation controller: per-VM cascade
//! cost, proportional-target computation, and reinflation.

use apps::{MemcachedApp, MemcachedParams};
use criterion::{criterion_group, criterion_main, Criterion};
use deflate_core::{proportional_targets, CascadeConfig, ResourceVector, VmDeflationState, VmId};
use hypervisor::{Vm, VmPriority};
use simkit::SimTime;
use std::hint::black_box;

fn vm_spec() -> ResourceVector {
    ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0)
}

fn bench_cascade(c: &mut Criterion) {
    c.bench_function("cascade/full_with_agent", |b| {
        b.iter(|| {
            let app = MemcachedApp::new(MemcachedParams::default());
            let vm = Vm::new(VmId(1), vm_spec(), VmPriority::Low);
            app.init_usage(&vm.state());
            let agent = app.agent(vm.state());
            let mut vm = vm.with_agent(Box::new(agent));
            let out = vm.deflate(SimTime::ZERO, &vm_spec().scale(0.5), &CascadeConfig::FULL);
            black_box(out.total_reclaimed)
        })
    });

    c.bench_function("cascade/vm_level_no_agent", |b| {
        b.iter(|| {
            let mut vm = Vm::new(VmId(1), vm_spec(), VmPriority::Low);
            vm.set_usage(8_192.0, 2.0);
            let out = vm.deflate(
                SimTime::ZERO,
                &vm_spec().scale(0.5),
                &CascadeConfig::VM_LEVEL,
            );
            black_box(out.total_reclaimed)
        })
    });

    c.bench_function("cascade/deflate_reinflate_roundtrip", |b| {
        b.iter(|| {
            let mut vm = Vm::new(VmId(1), vm_spec(), VmPriority::Low);
            vm.set_usage(4_096.0, 1.0);
            let target = vm_spec().scale(0.4);
            let _ = vm.deflate(SimTime::ZERO, &target, &CascadeConfig::VM_LEVEL);
            black_box(vm.reinflate(SimTime::from_secs(1), &target))
        })
    });
}

fn bench_proportional(c: &mut Criterion) {
    let vms: Vec<VmDeflationState> = (0..64)
        .map(|i| VmDeflationState::with_min(VmId(i), vm_spec(), vm_spec().scale(0.3)))
        .collect();
    let demand = vm_spec().scale(10.0);
    c.bench_function("policy/proportional_targets_64vms", |b| {
        b.iter(|| black_box(proportional_targets(black_box(&demand), black_box(&vms))))
    });
}

criterion_group!(benches, bench_cascade, bench_proportional);
criterion_main!(benches);
