//! Regenerates paper Figs. 7a and 7b.
fn main() {
    for t in bench::figs::fig7::run() {
        t.print();
    }
}
