//! Micro-benchmarks of deflation-aware placement over a 200-server pool.

use cluster::placement::{choose_server, PlacementPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use deflate_core::{ResourceVector, ServerId, VmId};
use hypervisor::{PhysicalServer, Vm, VmPriority};
use simkit::SimRng;
use std::hint::black_box;

fn build_pool(n: u64) -> Vec<PhysicalServer> {
    let capacity = ResourceVector::new(16.0, 65_536.0, 400.0, 800.0);
    let spec = ResourceVector::new(2.0, 4_096.0, 50.0, 100.0);
    (0..n)
        .map(|i| {
            let mut s = PhysicalServer::new(ServerId(i), capacity);
            // Partially loaded with a mix of priorities.
            for j in 0..(i % 6) {
                let pri = if j % 2 == 0 {
                    VmPriority::Low
                } else {
                    VmPriority::High
                };
                s.add_vm(Vm::new(VmId(i * 10 + j), spec, pri));
            }
            s
        })
        .collect()
}

fn bench_placement(c: &mut Criterion) {
    let servers = build_pool(200);
    let demand = ResourceVector::new(4.0, 8_192.0, 100.0, 200.0);
    for policy in PlacementPolicy::ALL {
        c.bench_function(format!("placement/{}_200_servers", policy.name()), |b| {
            let mut rng = SimRng::seed_from_u64(7);
            b.iter(|| {
                black_box(choose_server(
                    policy,
                    black_box(&servers),
                    black_box(&demand),
                    &mut rng,
                ))
            })
        });
    }
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
