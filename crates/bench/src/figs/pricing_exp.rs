//! The §8 pricing discussion as an experiment: provider revenue under
//! the two transient-billing models, with and without deflation.
//!
//! The paper argues deflatable VMs "can allow providers to charge higher
//! prices for their surplus resources" and that the resource-as-a-service
//! model "fits well". This table quantifies both on the trace-driven
//! cluster: deflation admits more transient VM-hours (more revenue at
//! identical prices), and RaaS billing refunds deflated capacity unless
//! a premium prices the higher utility in.

use cluster::{
    revenue, run_cluster_sim, ClusterManagerConfig, ClusterSimConfig, Rates, TraceConfig,
    TransientPricing,
};
use simkit::SimDuration;

use crate::{f1, pct, Table};

/// Revenue table across load levels and billing models.
pub fn run() -> Table {
    run_with(40, SimDuration::from_hours(12))
}

/// [`run`] with explicit scale (shrunk in tests).
pub fn run_with(n_servers: usize, horizon: SimDuration) -> Table {
    let mut t = Table::new(
        "pricing",
        "Provider revenue (USD) by reclamation and billing model",
        vec![
            "offered load",
            "preempt-only flat",
            "deflation flat",
            "deflation RaaS",
            "RaaS/flat",
        ],
    );
    let rates = Rates::default();
    // Scale the arrival rate to the cluster size (≈ per-16-CPU-server).
    let per_server_rate = [0.8, 1.6, 2.4, 3.2];
    for mult in per_server_rate {
        let rate = mult * n_servers as f64;
        let mut results = Vec::new();
        for deflation in [false, true] {
            let cfg = ClusterSimConfig {
                sharding: Default::default(),
                manager: ClusterManagerConfig {
                    n_servers,
                    deflation_enabled: deflation,
                    ..ClusterManagerConfig::default()
                },
                trace: TraceConfig {
                    arrivals_per_hour: rate,
                    ..TraceConfig::default()
                },
                horizon,
            };
            let r = run_cluster_sim(&cfg);
            crate::record_sim_summary(&r.summary);
            results.push(r);
        }
        let pre_flat = revenue(&results[0], &rates, TransientPricing::FlatDiscount).total();
        let defl_flat = revenue(&results[1], &rates, TransientPricing::FlatDiscount).total();
        let defl_raas = revenue(&results[1], &rates, TransientPricing::ResourceAsAService).total();
        t.row(vec![
            pct(results[1].offered_utilization),
            f1(pre_flat),
            f1(defl_flat),
            f1(defl_raas),
            format!("{:.2}", defl_raas / defl_flat),
        ]);
    }
    t.expect(
        "deflation earns more than preemption-only at every load (more \
         admitted transient VM-hours); RaaS with a 25% premium lands \
         near flat billing while only charging for delivered resources",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deflation_revenue_dominates() {
        let t = run_with(12, SimDuration::from_hours(6));
        for r in 1..t.rows.len() {
            // Under pressure, deflation out-earns preemption-only.
            assert!(
                t.cell(r, 2) >= t.cell(r, 1) * 0.99,
                "row {r}: deflation {} vs preempt {}",
                t.cell(r, 2),
                t.cell(r, 1)
            );
        }
        // RaaS/flat ratio stays in a sane band.
        for r in 0..t.rows.len() {
            let ratio = t.cell(r, 4);
            assert!((0.5..=1.6).contains(&ratio), "row {r}: ratio {ratio}");
        }
    }
}
