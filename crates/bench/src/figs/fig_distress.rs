//! fig_distress: guest-distress ablation (not a paper figure).
//!
//! The paper's cluster evaluation assumes deflation targets stay above
//! each guest's working set; this experiment measures what happens when
//! they do not. It sweeps deflation aggressiveness — the trace's
//! `min_size_fraction`, i.e. how deep below spec the cascade may cut —
//! on a memory-balanced cluster (the default instance mix is CPU-bound,
//! so memory would otherwise never contend) and compares two arms:
//!
//! * **unguarded** ([`DistressConfig::unguarded`]): consequences only —
//!   sustained hard distress fires the guest OOM killer, thrashing
//!   guests run slower;
//! * **guarded** ([`DistressConfig::guarded`]): the same consequences
//!   plus the full mitigation loop — emergency reinflation from healthy
//!   donors, the per-VM circuit breaker, and the working-set floor.
//!
//! The guarded curve must dominate: strictly fewer OOM kills wherever
//! unguarded deflation kills at all, no kills where it kills none, and
//! goodput within 2% of unguarded at zero-distress operating points.

use cluster::{
    run_cluster_sim, ClusterManagerConfig, ClusterSimConfig, DistressConfig, TraceConfig,
};
use deflate_core::ResourceVector;
use simkit::SimDuration;

use crate::{f1, f3, Table};

/// Sweep configuration (shrunk in tests).
#[derive(Debug, Clone)]
pub struct FigDistressConfig {
    /// Servers in the simulated cluster.
    pub n_servers: usize,
    /// Simulated duration.
    pub horizon: SimDuration,
    /// Arrival rate (VMs/hour).
    pub arrivals_per_hour: f64,
    /// Aggressiveness sweep: each VM's minimum size as a fraction of its
    /// spec, most conservative first. At 0.60 the minimum sits above the
    /// resident set and distress is unreachable; at 0.15 the cascade may
    /// cut deep below the working set.
    pub min_size_fractions: Vec<f64>,
    /// Trace seed.
    pub seed: u64,
}

impl Default for FigDistressConfig {
    fn default() -> Self {
        FigDistressConfig {
            n_servers: 20,
            horizon: SimDuration::from_hours(6),
            arrivals_per_hour: 150.0,
            min_size_fractions: vec![0.60, 0.45, 0.35, 0.25, 0.15],
            seed: 7,
        }
    }
}

/// Memory-balanced server capacity: the stock 16-CPU/64-GiB shape never
/// binds on memory with the default instance mix, so deflation would
/// only ever cut CPU and no guest could be memory-distressed.
fn balanced_capacity() -> ResourceVector {
    ResourceVector::new(16.0, 32_768.0, 400.0, 800.0)
}

fn sim_config(cfg: &FigDistressConfig, min_size_fraction: f64, guarded: bool) -> ClusterSimConfig {
    ClusterSimConfig {
        sharding: Default::default(),
        manager: ClusterManagerConfig {
            n_servers: cfg.n_servers,
            server_capacity: balanced_capacity(),
            distress: if guarded {
                DistressConfig::guarded()
            } else {
                DistressConfig::unguarded()
            },
            ..ClusterManagerConfig::default()
        },
        trace: TraceConfig {
            arrivals_per_hour: cfg.arrivals_per_hour,
            lifetime_median_mins: 120.0,
            min_size_fraction,
            seed: cfg.seed,
            ..TraceConfig::default()
        },
        horizon: cfg.horizon,
    }
}

/// Billed CPU-hours, as in `fig_faults`: OOM-killed guests stop earning
/// until relaunched and thrashing guests earn at their slowed rate, so
/// distress shows up here directly.
fn goodput(r: &cluster::ClusterSimResult) -> f64 {
    r.high_pri_cpu_hours + r.low_pri_effective_cpu_hours
}

fn counter(r: &cluster::ClusterSimResult, key: &str) -> f64 {
    r.summary
        .get("counters")
        .and_then(|c| c.get(key))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0)
}

/// Fraction of low-priority sample time spent distressed.
fn p_distress(r: &cluster::ClusterSimResult) -> f64 {
    let sampled = counter(r, "distress.lowpri_sample_seconds");
    if sampled > 0.0 {
        counter(r, "cluster.distress_seconds") / sampled
    } else {
        0.0
    }
}

/// The sweep: one row per aggressiveness level, both arms side by side.
pub fn fig_distress_with(cfg: &FigDistressConfig) -> Table {
    let mut t = Table::new(
        "fig_distress",
        "Guest OOM kills, goodput and P[distress] vs deflation aggressiveness: \
         unguarded vs guarded (emergency reinflation + breaker + floor)",
        vec![
            "min size frac",
            "oom kills (u)",
            "oom kills (g)",
            "goodput u (cpu-h)",
            "goodput g (cpu-h)",
            "P[distress] u",
            "P[distress] g",
            "rescues (g)",
            "breaker trips (g)",
        ],
    );
    let jobs: Vec<ClusterSimConfig> = cfg
        .min_size_fractions
        .iter()
        .flat_map(|&msf| [sim_config(cfg, msf, false), sim_config(cfg, msf, true)])
        .collect();
    let results = crate::sweep::parallel_map(jobs, |c| run_cluster_sim(&c));
    for (i, &msf) in cfg.min_size_fractions.iter().enumerate() {
        let (u, g) = (&results[2 * i], &results[2 * i + 1]);
        crate::record_sim_summary(&u.summary);
        crate::record_sim_summary(&g.summary);
        t.row(vec![
            format!("{msf:.2}"),
            format!("{}", u.stats.oom_kills),
            format!("{}", g.stats.oom_kills),
            f1(goodput(u)),
            f1(goodput(g)),
            f3(p_distress(u)),
            f3(p_distress(g)),
            format!("{}", g.stats.emergency_reinflations),
            f1(counter(g, "cluster.breaker_trips")),
        ]);
    }
    t.expect(
        "the guarded loop dominates: strictly fewer OOM kills than \
         unguarded deflation at every level where unguarded kills at all \
         (and zero where it kills none), with goodput no worse than 2% \
         below unguarded at zero-distress operating points",
    );
    t
}

/// The sweep at default scale.
pub fn run() -> Vec<Table> {
    vec![fig_distress_with(&FigDistressConfig::default())]
}

/// The sweep at CI scale (finishes in seconds).
pub fn run_small() -> Vec<Table> {
    vec![fig_distress_with(&small_config())]
}

fn small_config() -> FigDistressConfig {
    FigDistressConfig {
        n_servers: 10,
        horizon: SimDuration::from_hours(4),
        arrivals_per_hour: 75.0,
        min_size_fractions: vec![0.60, 0.35, 0.15],
        ..FigDistressConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_loop_dominates() {
        let t = fig_distress_with(&small_config());
        assert_eq!(t.rows.len(), 3);
        let (kills_u, kills_g) = (t.column(1), t.column(2));
        // The sweep must actually reach distress somewhere, and the most
        // conservative level must be a zero-distress operating point.
        assert!(
            kills_u.iter().any(|&k| k > 0.0),
            "no unguarded kills anywhere: {kills_u:?}"
        );
        assert_eq!(kills_u[0], 0.0, "min 0.60 must be distress-free");
        for r in 0..t.rows.len() {
            let (ku, kg) = (kills_u[r], kills_g[r]);
            if ku > 0.0 {
                assert!(kg < ku, "row {r}: guarded kills {kg} !< unguarded {ku}");
            } else {
                assert_eq!(kg, 0.0, "row {r}: guarded kills where unguarded has none");
            }
            // At zero-distress points the guardrails must be (nearly)
            // free: goodput within 2% of the unguarded arm.
            if t.cell(r, 5) == 0.0 {
                let (gu, gg) = (t.cell(r, 3), t.cell(r, 4));
                assert!(
                    gg >= 0.98 * gu,
                    "row {r}: guarded goodput {gg} < 0.98 × unguarded {gu}"
                );
            }
        }
    }
}
