//! Bulk-synchronous execution of stage DAGs over deflatable workers, with
//! per-partition location tracking and lineage-based recomputation.
//!
//! The simulator executes stages in topological order. Within a stage,
//! task assignment depends on whether Spark *knows* about the deflation:
//!
//! * under **VM-level** deflation the scheduler is unaware — tasks spread
//!   evenly over nominal slots and the stage is gated by the slowest
//!   (most-deflated) worker: slowdown `1/(1−max d)` (Eq. 1);
//! * under **self-deflation** the master kills tasks and blacklists
//!   executors — capacity shrinks but load rebalances: slowdown
//!   `1/(1−mean d)` (Eq. 3) — at the price of losing the RDD partitions
//!   the killed executors held, which are recomputed by recursively
//!   tracing the lineage graph exactly as Spark's DAG scheduler does.
//! * under **preemption** whole workers disappear with everything they
//!   stored — the transiency mechanism of today's clouds.

use std::collections::{HashMap, HashSet};

use simkit::{SimDuration, SimRng};

use crate::policy::{
    choose_mechanism_with_r, ChosenMechanism, DeflationDecision, PolicyInputs, REstimateKind,
};
use crate::rdd::{DepKind, RddDag};
use crate::stage::{build_stages, Stage, StageId};

/// A pool of Spark worker VMs.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    /// Nominal task slots per worker (≈ vCPUs).
    pub slots: Vec<f64>,
    /// Speed factor per worker (1.0 = full speed; reduced by VM-level
    /// deflation).
    pub speed: Vec<f64>,
    /// Usable slots per worker (reduced by self-deflation blacklisting
    /// and preemption).
    pub capacity: Vec<f64>,
    /// Contention multiplier (≥ 1) applied to black-box (unaware)
    /// execution: overcommitted VMs suffer interference beyond the pure
    /// resource cut — memory pressure, spills, GC — which is exactly the
    /// "stragglers and higher long-term impact" the paper attributes to
    /// VM-level deflation (§4.1).
    pub vm_contention: f64,
    /// Spark speculative execution: straggling tasks are re-launched on
    /// faster workers near a stage's end, so an unaware stage is no
    /// longer gated purely by the slowest worker (Eq. 1's `max d`
    /// assumption holds for the paper's setup, where BigDL disables
    /// speculation; this switch quantifies what speculation changes).
    pub speculation: bool,
}

impl WorkerPool {
    /// Creates `n` identical workers with `slots` task slots each.
    pub fn uniform(n: usize, slots: f64) -> Self {
        assert!(n > 0 && slots > 0.0, "pool needs workers and slots");
        WorkerPool {
            slots: vec![slots; n],
            speed: vec![1.0; n],
            capacity: vec![slots; n],
            vm_contention: 1.0,
            speculation: false,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total nominal slots.
    pub fn total_slots(&self) -> f64 {
        self.slots.iter().sum()
    }

    /// Total effective task-processing rate (capacity × speed).
    pub fn total_rate(&self) -> f64 {
        self.capacity
            .iter()
            .zip(&self.speed)
            .map(|(c, s)| c * s)
            .sum()
    }

    /// Slowest positive worker speed (gates BSP stages under unaware
    /// scheduling).
    pub fn min_speed(&self) -> f64 {
        self.speed
            .iter()
            .zip(&self.capacity)
            .filter(|(_, c)| **c > 0.0)
            .map(|(s, _)| *s)
            .fold(f64::INFINITY, f64::min)
    }

    /// BSP time for a stage of `tasks` tasks at `cost` each.
    ///
    /// `aware` selects the deflation-aware scheduler (balanced by current
    /// rate) versus the unaware one (balanced by nominal slots, gated by
    /// the slowest worker). Always at least one wave.
    pub fn stage_time(&self, tasks: usize, cost: SimDuration, aware: bool) -> SimDuration {
        if tasks == 0 {
            return SimDuration::ZERO;
        }
        let fluid = if aware {
            let rate = self.total_rate();
            assert!(rate > 0.0, "no capacity left to run tasks");
            tasks as f64 / rate
        } else if self.speculation {
            // Speculation copies straggling tasks to faster workers: the
            // stage finishes when the aggregate rate has processed the
            // tasks plus the duplicated straggler work (~10 % overhead),
            // instead of waiting for the slowest worker.
            let rate = self.total_rate();
            assert!(rate > 0.0, "no capacity left to run tasks");
            tasks as f64 * 1.10 / rate
        } else {
            let slots = self.total_slots();
            let min_speed = self.min_speed();
            assert!(
                slots > 0.0 && min_speed.is_finite() && min_speed > 0.0,
                "no runnable workers"
            );
            (tasks as f64 / slots) / min_speed
        };
        // At least one wave: a stage cannot finish faster than one task.
        let wave_floor = if aware {
            let max_speed = self
                .speed
                .iter()
                .zip(&self.capacity)
                .filter(|(_, c)| **c > 0.0)
                .map(|(s, _)| *s)
                .fold(0.0f64, f64::max);
            1.0 / max_speed.max(1e-12)
        } else {
            1.0 / self.min_speed()
        };
        let contention = if aware { 1.0 } else { self.vm_contention };
        cost.mul_f64(fluid.max(wave_floor) * contention)
    }
}

/// How resources are reclaimed from the Spark job's VMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeflationMode {
    /// No deflation (baseline).
    None,
    /// OS + hypervisor reclamation: workers slow down, nothing is lost.
    VmLevel,
    /// The master kills tasks and blacklists executors.
    SelfDeflation,
    /// Whole workers are revoked (today's transient clouds).
    Preemption,
    /// The paper's policy: estimate both and pick the better mechanism.
    Cascade,
}

/// A deflation applied while the job runs.
#[derive(Debug, Clone)]
pub struct DeflationEvent {
    /// Job progress (fraction of baseline running time) at which the
    /// reclamation arrives.
    pub at_progress: f64,
    /// Per-worker deflation fractions `d`.
    pub fractions: Vec<f64>,
}

impl DeflationEvent {
    /// Deflates every worker by the same fraction at the given progress.
    pub fn uniform(n_workers: usize, fraction: f64, at_progress: f64) -> Self {
        DeflationEvent {
            at_progress,
            fractions: vec![fraction; n_workers],
        }
    }
}

/// The outcome of one simulated job execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock running time.
    pub duration: SimDuration,
    /// Baseline (undeflated) running time.
    pub baseline: SimDuration,
    /// Time spent recomputing lost partitions.
    pub recompute: SimDuration,
    /// Number of recomputed tasks.
    pub recomputed_tasks: usize,
    /// The policy decision, when [`DeflationMode::Cascade`] ran.
    pub decision: Option<DeflationDecision>,
}

impl RunResult {
    /// Running time normalized to the baseline.
    pub fn normalized(&self) -> f64 {
        self.duration.ratio(self.baseline).max(0.0)
    }
}

/// The BSP execution simulator.
pub struct BspSimulator {
    stages: Vec<Stage>,
    pool: WorkerPool,
    rng: SimRng,
    /// Worker index of each output partition, per completed stage.
    locations: HashMap<StageId, Vec<usize>>,
    /// Partitions lost to executor kills / preemptions, per stage.
    lost: HashMap<StageId, HashSet<usize>>,
    /// One-off stall charged after a preemption: revocation grace,
    /// fetch-failure detection, task retries and executor re-registration
    /// — disruption that self-deflation's cooperative kill avoids (§6.2).
    pending_stall: SimDuration,
}

impl BspSimulator {
    /// Builds a simulator for a lineage graph on the given pool.
    pub fn new(dag: &RddDag, pool: WorkerPool, seed: u64) -> Self {
        BspSimulator {
            stages: build_stages(dag),
            pool,
            rng: SimRng::seed_from_u64(seed),
            locations: HashMap::new(),
            lost: HashMap::new(),
            pending_stall: SimDuration::ZERO,
        }
    }

    /// The stages being executed (topological order).
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Baseline running time on the undeflated pool.
    pub fn baseline(&self) -> SimDuration {
        let fresh = WorkerPool::uniform(self.pool.len(), self.pool.slots[0]);
        self.stages.iter().fold(SimDuration::ZERO, |acc, s| {
            acc + fresh.stage_time(s.tasks, s.task_cost, true)
        })
    }

    /// Records where a completed stage's partitions live: spread
    /// proportionally to current worker rates (weighted round-robin).
    fn place_partitions(&mut self, sid: StageId, tasks: usize) {
        let rates: Vec<f64> = self
            .pool
            .capacity
            .iter()
            .zip(&self.pool.speed)
            .map(|(c, s)| c * s)
            .collect();
        let total: f64 = rates.iter().sum();
        let mut locs = Vec::with_capacity(tasks);
        if total <= 0.0 {
            self.locations.insert(sid, locs);
            return;
        }
        let mut acc = vec![0.0f64; rates.len()];
        for _ in 0..tasks {
            // Deterministic weighted assignment: pick the worker with the
            // largest remaining share.
            let mut best = 0;
            let mut best_score = f64::NEG_INFINITY;
            for (i, r) in rates.iter().enumerate() {
                if *r <= 0.0 {
                    continue;
                }
                let score = r / total - acc[i];
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            acc[best] += 1.0 / tasks as f64;
            locs.push(best);
        }
        self.locations.insert(sid, locs);
    }

    /// Marks partitions on `worker` lost with probability `frac`.
    fn lose_partitions(&mut self, worker: usize, frac: f64) {
        if frac <= 0.0 {
            return;
        }
        // Iterate stages in sorted order: HashMap order would make RNG
        // consumption (and thus the run) non-deterministic.
        let mut sids: Vec<StageId> = self.locations.keys().copied().collect();
        sids.sort();
        for sid in sids {
            let locs = &self.locations[&sid];
            for (p, loc) in locs.iter().enumerate() {
                if *loc == worker && self.rng.chance(frac) {
                    self.lost.entry(sid).or_default().insert(p);
                }
            }
        }
    }

    /// Applies the deflation event under the given mechanism.
    fn apply_deflation(&mut self, ev: &DeflationEvent, mechanism: ChosenMechanism) {
        match mechanism {
            ChosenMechanism::VmLevel => {
                let max_d = ev.fractions.iter().copied().fold(0.0f64, f64::max);
                self.pool.vm_contention = 1.0 + 0.3 * max_d;
                for (i, d) in ev.fractions.iter().enumerate() {
                    self.pool.speed[i] *= (1.0 - d).max(0.0);
                }
            }
            ChosenMechanism::SelfDeflation => {
                let fractions = ev.fractions.clone();
                for (i, d) in fractions.iter().enumerate() {
                    self.pool.capacity[i] *= (1.0 - d).max(0.0);
                    self.lose_partitions(i, *d);
                }
            }
        }
    }

    /// Preempts enough whole workers to cover the event's aggregate
    /// deflation; they lose everything they stored.
    fn apply_preemption(&mut self, ev: &DeflationEvent) {
        let total: f64 = ev.fractions.iter().sum();
        let k = total.round() as usize;
        // Preempt the most-deflated workers first.
        let mut order: Vec<usize> = (0..self.pool.len()).collect();
        order.sort_by(|a, b| {
            ev.fractions[*b]
                .total_cmp(&ev.fractions[*a])
                .then_with(|| a.cmp(b))
        });
        for &w in order.iter().take(k.min(self.pool.len().saturating_sub(1))) {
            self.pool.capacity[w] = 0.0;
            self.pool.speed[w] = 0.0;
            self.lose_partitions(w, 1.0);
        }
        self.pending_stall = self.baseline().mul_f64(0.1);
    }

    /// Recursively resolves missing inputs for `upcoming` (the stage
    /// about to run) and recomputes them; returns (time, task count).
    fn recompute_missing(&mut self, upcoming: usize) -> (SimDuration, usize) {
        // Required partitions per stage, seeded by the upcoming stage's
        // parents.
        let mut need: HashMap<StageId, HashSet<usize>> = HashMap::new();
        let stage = &self.stages[upcoming];
        for (pid, kind) in &stage.parents {
            let pstage = &self.stages[pid.0];
            let set: HashSet<usize> = match kind {
                DepKind::Wide => (0..pstage.tasks).collect(),
                DepKind::Narrow => (0..stage.tasks.min(pstage.tasks)).collect(),
            };
            need.entry(*pid).or_default().extend(set);
        }

        // Walk backwards: a needed+lost partition must be recomputed, and
        // its own inputs must be present.
        let mut to_recompute: HashMap<StageId, HashSet<usize>> = HashMap::new();
        for idx in (0..upcoming).rev() {
            let sid = StageId(idx);
            let Some(needed) = need.remove(&sid) else {
                continue;
            };
            let lost = self.lost.get(&sid);
            let missing: HashSet<usize> = match lost {
                None => continue,
                Some(l) => needed.intersection(l).copied().collect(),
            };
            if missing.is_empty() {
                continue;
            }
            let stage = &self.stages[idx];
            for (pid, kind) in &stage.parents {
                let pstage = &self.stages[pid.0];
                let set: HashSet<usize> = match kind {
                    DepKind::Wide => (0..pstage.tasks).collect(),
                    DepKind::Narrow => missing
                        .iter()
                        .copied()
                        .filter(|p| *p < pstage.tasks)
                        .collect(),
                };
                need.entry(*pid).or_default().extend(set);
            }
            to_recompute.insert(sid, missing);
        }

        // Recompute in topological order (parents first), deflation-aware.
        let mut time = SimDuration::ZERO;
        let mut count = 0;
        let mut order: Vec<StageId> = to_recompute.keys().copied().collect();
        order.sort();
        for sid in order {
            let missing = &to_recompute[&sid];
            let stage = &self.stages[sid.0];
            time += self.pool.stage_time(missing.len(), stage.task_cost, true);
            count += missing.len();
            // The partitions exist again.
            if let Some(l) = self.lost.get_mut(&sid) {
                for p in missing {
                    l.remove(p);
                }
            }
        }
        (time, count)
    }

    /// Expected recomputation fraction `r` if the executors were killed
    /// with the event's per-worker fractions right before stage
    /// `upcoming` — the DAG-exact estimator: trace the lineage backwards
    /// from the upcoming stage exactly as the recomputation pass would,
    /// using expected (fractional) partition losses instead of sampled
    /// ones, and normalize the resulting recomputation time into Eq. 3's
    /// `r` (such that `r·c/(1−mean d) ≈ recompute_time/T`).
    pub fn expected_recompute_fraction(
        &self,
        fractions: &[f64],
        upcoming: usize,
        elapsed: SimDuration,
        baseline: SimDuration,
    ) -> f64 {
        let c = elapsed.ratio(baseline);
        if c <= 0.0 {
            return 0.0;
        }
        // Expected lost fraction per completed stage.
        let lost_frac = |sid: StageId| -> f64 {
            let Some(locs) = self.locations.get(&sid) else {
                return 0.0;
            };
            if locs.is_empty() {
                return 0.0;
            }
            let total: f64 = locs
                .iter()
                .map(|w| fractions.get(*w).copied().unwrap_or(0.0))
                .sum();
            total / locs.len() as f64
        };

        // Backward pass: needed[s] = fraction of s's partitions required.
        let mut needed = vec![0.0f64; self.stages.len()];
        if upcoming < self.stages.len() {
            for (pid, _) in &self.stages[upcoming].parents {
                needed[pid.0] = 1.0;
            }
        }
        let mut recompute_work = 0.0f64; // Serial task-seconds.
        for idx in (0..upcoming).rev() {
            if needed[idx] <= 0.0 {
                continue;
            }
            let stage = &self.stages[idx];
            let missing_frac = needed[idx] * lost_frac(StageId(idx));
            if missing_frac <= 0.0 {
                continue;
            }
            recompute_work += missing_frac * stage.tasks as f64 * stage.task_cost.as_secs_f64();
            for (pid, kind) in &stage.parents {
                match kind {
                    // A wide read needs *all* parent partitions as soon as
                    // any output partition must be recomputed.
                    DepKind::Wide => needed[pid.0] = 1.0,
                    DepKind::Narrow => needed[pid.0] = (needed[pid.0] + missing_frac).min(1.0),
                }
            }
        }

        // The recomputation runs on the post-kill capacity.
        let rate_after: f64 = self
            .pool
            .slots
            .iter()
            .enumerate()
            .map(|(i, slots)| slots * (1.0 - fractions.get(i).copied().unwrap_or(0.0)).max(0.0))
            .sum();
        if rate_after <= 0.0 {
            return 1.0;
        }
        let recompute_secs = recompute_work / rate_after;
        let mean_d = if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        };
        // Invert Eq. 3's recomputation term: r·c·T/(1−mean d) = cost.
        let r = recompute_secs / baseline.as_secs_f64() * (1.0 - mean_d) / c;
        r.clamp(0.0, 1.0)
    }

    /// Runs the job to completion with the paper's default sync-time
    /// `r` estimator.
    pub fn run(&mut self, mode: DeflationMode, event: Option<&DeflationEvent>) -> RunResult {
        self.run_with_estimator(mode, event, REstimateKind::SyncHeuristic)
    }

    /// Runs the job to completion under the given mode, event, and — for
    /// [`DeflationMode::Cascade`] — recomputation estimator (§4.1 offers
    /// worst-case, sync-heuristic and DAG-exact estimates).
    pub fn run_with_estimator(
        &mut self,
        mode: DeflationMode,
        event: Option<&DeflationEvent>,
        estimator: REstimateKind,
    ) -> RunResult {
        let baseline = self.baseline();
        let mut elapsed = SimDuration::ZERO;
        let mut recompute = SimDuration::ZERO;
        let mut recomputed_tasks = 0usize;
        let mut deflated = false;
        let mut deferred = false;
        let mut decision = None;
        let mut sync_elapsed = SimDuration::ZERO;

        for idx in 0..self.stages.len() {
            // Deflation arrives at the first stage boundary past the
            // requested progress point. The master defers the decision
            // past a boundary that sits mid-shuffle (the upcoming stage
            // would immediately re-read inputs a kill would destroy) —
            // but by at most one stage, so shuffle-chain jobs still
            // deflate promptly.
            if let (Some(ev), false) = (event, deflated) {
                let progress = elapsed.ratio(baseline);
                let safe_boundary =
                    !self.stages[idx].is_synchronous() || deferred || idx + 1 == self.stages.len();
                if progress >= ev.at_progress && mode != DeflationMode::None && !safe_boundary {
                    deferred = true;
                }
                if progress >= ev.at_progress && mode != DeflationMode::None && safe_boundary {
                    deflated = true;
                    match mode {
                        DeflationMode::VmLevel => {
                            self.apply_deflation(ev, ChosenMechanism::VmLevel)
                        }
                        DeflationMode::SelfDeflation => {
                            self.apply_deflation(ev, ChosenMechanism::SelfDeflation)
                        }
                        DeflationMode::Preemption => self.apply_preemption(ev),
                        DeflationMode::Cascade => {
                            let inputs = PolicyInputs {
                                progress,
                                fractions: ev.fractions.clone(),
                                sync_fraction: sync_elapsed.ratio(elapsed),
                                shuffle_imminent: self.stages[idx].is_synchronous(),
                            };
                            let r = match estimator {
                                REstimateKind::WorstCase => 1.0,
                                REstimateKind::SyncHeuristic => {
                                    if inputs.shuffle_imminent {
                                        1.0
                                    } else {
                                        inputs.sync_fraction
                                    }
                                }
                                REstimateKind::DagExact => self.expected_recompute_fraction(
                                    &ev.fractions,
                                    idx,
                                    elapsed,
                                    baseline,
                                ),
                            };
                            let d = choose_mechanism_with_r(&inputs, r);
                            self.apply_deflation(ev, d.chosen);
                            decision = Some(d);
                        }
                        DeflationMode::None => unreachable!("checked above"),
                    }
                }
            }

            // A preemption stalls the driver before anything else runs.
            elapsed += self.pending_stall;
            self.pending_stall = SimDuration::ZERO;

            // Recompute any inputs lost to kills/preemptions.
            let (rt, rc) = self.recompute_missing(idx);
            recompute += rt;
            recomputed_tasks += rc;
            elapsed += rt;

            // Execute the stage. The scheduler is deflation-aware unless
            // the reclamation was VM-level (black-box).
            let aware = !matches!(mode, DeflationMode::VmLevel)
                && !matches!(
                    decision,
                    Some(DeflationDecision {
                        chosen: ChosenMechanism::VmLevel,
                        ..
                    })
                );
            let stage = &self.stages[idx];
            let t = self.pool.stage_time(stage.tasks, stage.task_cost, aware);
            elapsed += t;
            if stage.is_synchronous() {
                sync_elapsed += t;
            }
            let (sid, tasks) = (stage.id, stage.tasks);
            self.place_partitions(sid, tasks);
        }

        RunResult {
            duration: elapsed,
            baseline,
            recompute,
            recomputed_tasks,
            decision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::DagBuilder;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// A shuffle-chain job: src -> wide -> wide -> wide.
    fn shuffle_chain() -> RddDag {
        let mut b = DagBuilder::new();
        let mut h = b.source("src", 32, secs(2));
        for i in 0..6 {
            h = b.wide(&format!("shuffle{i}"), h, 32, secs(2));
        }
        b.build(h)
    }

    /// An iterative cached-map job: cached src; per iteration a narrow
    /// map over the cache plus a tiny reduce.
    fn cached_iterations() -> RddDag {
        let mut b = DagBuilder::new();
        let src = b.source("src", 32, secs(4)).cache(&mut b);
        let mut last = src;
        for i in 0..8 {
            let m = b.narrow(&format!("map{i}"), src, secs(2));
            last = b.wide(&format!("agg{i}"), m, 1, SimDuration::from_millis(100));
        }
        b.build(last)
    }

    #[test]
    fn baseline_is_deterministic_and_positive() {
        let dag = shuffle_chain();
        let sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let b1 = sim.baseline();
        let b2 = sim.baseline();
        assert_eq!(b1, b2);
        assert!(b1 > SimDuration::ZERO);
    }

    #[test]
    fn no_deflation_matches_baseline() {
        let dag = shuffle_chain();
        let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let r = sim.run(DeflationMode::None, None);
        assert_eq!(r.duration, r.baseline);
        assert!((r.normalized() - 1.0).abs() < 1e-9);
        assert_eq!(r.recomputed_tasks, 0);
    }

    #[test]
    fn vm_level_matches_eq1() {
        let dag = shuffle_chain();
        let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let ev = DeflationEvent::uniform(8, 0.5, 0.5);
        let r = sim.run(DeflationMode::VmLevel, Some(&ev));
        // Eq. 1: c + (1-c)/(1-0.5) with c close to the stage boundary at
        // or after 0.5.
        let n = r.normalized();
        // Eq. 1 plus the contention penalty of black-box overcommitment;
        // the effective c is the stage boundary at or after 0.5 (with the
        // one-stage mid-shuffle deferral).
        assert!((1.3..=1.8).contains(&n), "normalized {n}");
        assert_eq!(r.recomputed_tasks, 0);
    }

    #[test]
    fn self_deflation_recomputes_on_shuffle_chains() {
        let dag = shuffle_chain();
        let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let ev = DeflationEvent::uniform(8, 0.5, 0.5);
        let r = sim.run(DeflationMode::SelfDeflation, Some(&ev));
        assert!(r.recomputed_tasks > 0, "shuffle chain must recompute");
        // Self costs more than VM-level here (the paper's ALS case).
        let mut sim2 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rv = sim2.run(DeflationMode::VmLevel, Some(&ev));
        assert!(
            r.normalized() > rv.normalized(),
            "self {} vs vm {}",
            r.normalized(),
            rv.normalized()
        );
    }

    #[test]
    fn self_deflation_cheap_on_cached_iterations() {
        let dag = cached_iterations();
        let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let ev = DeflationEvent::uniform(8, 0.5, 0.5);
        let r = sim.run(DeflationMode::SelfDeflation, Some(&ev));
        // Some cached source partitions may be re-read, but the cost is
        // small compared to the shuffle chain.
        let n = r.normalized();
        assert!(n < 2.0, "normalized {n}");
    }

    #[test]
    fn preemption_is_worst_on_shuffle_chains() {
        let dag = shuffle_chain();
        let ev = DeflationEvent::uniform(8, 0.5, 0.5);

        let mut s1 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rp = s1.run(DeflationMode::Preemption, Some(&ev));
        let mut s2 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rs = s2.run(DeflationMode::SelfDeflation, Some(&ev));
        let mut s3 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rv = s3.run(DeflationMode::VmLevel, Some(&ev));

        assert!(
            rp.normalized() >= rs.normalized() && rs.normalized() > rv.normalized(),
            "preempt {} self {} vm {}",
            rp.normalized(),
            rs.normalized(),
            rv.normalized()
        );
    }

    #[test]
    fn cascade_picks_vm_for_shuffle_chain() {
        let dag = shuffle_chain();
        let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let ev = DeflationEvent::uniform(8, 0.5, 0.5);
        let r = sim.run(DeflationMode::Cascade, Some(&ev));
        let d = r.decision.expect("cascade decides");
        assert_eq!(d.chosen, ChosenMechanism::VmLevel);
        // And the outcome tracks the VM-level run.
        let mut s2 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rv = s2.run(DeflationMode::VmLevel, Some(&ev));
        assert!((r.normalized() - rv.normalized()).abs() < 0.05);
    }

    #[test]
    fn uneven_deflation_straggles_vm_level() {
        // Only one worker deflated: VM-level pays max d, self pays mean d.
        let dag = cached_iterations();
        let mut fr = vec![0.0; 8];
        fr[3] = 0.6;
        let ev = DeflationEvent {
            at_progress: 0.3,
            fractions: fr,
        };
        let mut s1 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rv = s1.run(DeflationMode::VmLevel, Some(&ev));
        let mut s2 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rs = s2.run(DeflationMode::SelfDeflation, Some(&ev));
        assert!(
            rs.normalized() < rv.normalized(),
            "self {} vm {}",
            rs.normalized(),
            rv.normalized()
        );
        // Cascade should therefore pick self-deflation here.
        let mut s3 = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let rc = s3.run(DeflationMode::Cascade, Some(&ev));
        assert_eq!(
            rc.decision.expect("decides").chosen,
            ChosenMechanism::SelfDeflation
        );
    }

    #[test]
    fn deflation_at_end_costs_little() {
        let dag = shuffle_chain();
        let ev_late = DeflationEvent::uniform(8, 0.5, 0.95);
        let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let r = sim.run(DeflationMode::VmLevel, Some(&ev_late));
        assert!(r.normalized() < 1.3, "late deflation: {}", r.normalized());
    }

    #[test]
    fn dag_exact_estimator_ranks_workloads() {
        // The exact estimator must see the shuffle chain as expensive to
        // recompute and the cached iteration as cheap.
        let chain = shuffle_chain();
        let mut sim = BspSimulator::new(&chain, WorkerPool::uniform(8, 4.0), 1);
        // Execute the first half so partitions have locations.
        let baseline = sim.baseline();
        let _ = sim.run(DeflationMode::None, None);
        let fractions = vec![0.5; 8];
        let mid = sim.stages().len() / 2;
        let r_chain =
            sim.expected_recompute_fraction(&fractions, mid, baseline.mul_f64(0.5), baseline);

        let cached = cached_iterations();
        let mut sim2 = BspSimulator::new(&cached, WorkerPool::uniform(8, 4.0), 1);
        let baseline2 = sim2.baseline();
        let _ = sim2.run(DeflationMode::None, None);
        let mid2 = sim2.stages().len() / 2;
        let r_cached =
            sim2.expected_recompute_fraction(&fractions, mid2, baseline2.mul_f64(0.5), baseline2);

        assert!(
            r_chain > 2.0 * r_cached,
            "chain r {r_chain} cached r {r_cached}"
        );
        assert!((0.0..=1.0).contains(&r_chain));
        assert!((0.0..=1.0).contains(&r_cached));
    }

    #[test]
    fn worst_case_estimator_never_self_deflates_uniformly() {
        let dag = cached_iterations();
        let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
        let ev = DeflationEvent::uniform(8, 0.5, 0.5);
        let r = sim.run_with_estimator(
            DeflationMode::Cascade,
            Some(&ev),
            crate::policy::REstimateKind::WorstCase,
        );
        assert_eq!(
            r.decision.expect("decides").chosen,
            ChosenMechanism::VmLevel
        );
    }

    #[test]
    fn estimators_agree_on_extreme_workloads() {
        // For the shuffle chain all three estimators should pick
        // VM-level; disagreement only appears on middling workloads.
        let dag = shuffle_chain();
        let ev = DeflationEvent::uniform(8, 0.5, 0.5);
        for est in [
            crate::policy::REstimateKind::WorstCase,
            crate::policy::REstimateKind::SyncHeuristic,
            crate::policy::REstimateKind::DagExact,
        ] {
            let mut sim = BspSimulator::new(&dag, WorkerPool::uniform(8, 4.0), 1);
            let r = sim.run_with_estimator(DeflationMode::Cascade, Some(&ev), est);
            assert_eq!(
                r.decision.expect("decides").chosen,
                ChosenMechanism::VmLevel,
                "{est:?}"
            );
        }
    }

    #[test]
    fn speculation_softens_the_straggler_gate() {
        // One worker at half speed: without speculation the stage is
        // gated by it; with speculation the aggregate rate governs.
        let mut pool = WorkerPool::uniform(4, 2.0);
        pool.speed[0] = 0.5;
        let plain = pool.stage_time(16, secs(1), false);
        pool.speculation = true;
        let spec = pool.stage_time(16, secs(1), false);
        assert!(spec < plain, "speculative {spec} plain {plain}");
        // But speculation is not free: it duplicates work, so it stays
        // above the deflation-aware scheduler.
        let aware = pool.stage_time(16, secs(1), true);
        assert!(spec >= aware);
    }

    #[test]
    fn pool_stage_time_unaware_gated_by_slowest() {
        let mut pool = WorkerPool::uniform(4, 2.0);
        pool.speed[0] = 0.5;
        let aware = pool.stage_time(16, secs(1), true);
        let unaware = pool.stage_time(16, secs(1), false);
        assert!(unaware > aware, "unaware {unaware} aware {aware}");
        // Unaware: 16 tasks / 8 slots = 2 waves, /0.5 speed = 4 s
        // (vm_contention is 1.0 unless a VM-level deflation set it).
        assert_eq!(unaware, secs(4));
    }

    #[test]
    fn stage_time_has_single_wave_floor() {
        let pool = WorkerPool::uniform(8, 4.0);
        let t = pool.stage_time(1, secs(10), true);
        assert_eq!(t, secs(10));
    }
}
