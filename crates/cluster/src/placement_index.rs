//! Incrementally-maintained placement index: sublinear candidate
//! selection for [`choose_server_with`](crate::placement::choose_server_with).
//!
//! PR 2 made cluster accounting O(1) per event, leaving the O(servers)
//! placement scan as the simulator's dominant cost. This index caches
//! each server's placement-relevant vectors (free, deflation
//! availability, preemption availability) and, for every (availability
//! notion × resource dimension) pair, keeps two query structures:
//!
//! * a **bucket histogram** — population counts of servers by headroom
//!   along that dimension, quantized against the fleet's reference
//!   capacity. A query plans against the histograms only: for each
//!   dimension it sums the buckets at or above the demand's threshold
//!   and queries along the *most selective* axis (fewest candidates).
//!   Zero candidates answers the query without touching a single
//!   server — the common case for the free tier of a saturated fleet.
//! * an **axis plane** — a contiguous `f64` array of every server's
//!   headroom along that dimension (`-inf` for down servers). The query
//!   sweeps the chosen plane in ascending server index with one compare
//!   per server; only servers passing the single-dimension test pay the
//!   full dominates check and (for BestFit) the cosine scoring. Under
//!   load that is a cache-resident sweep with a handful of survivors,
//!   instead of the oracle's full-vector scoring of the whole fleet.
//!
//! Pruning soundness: `ResourceVector::dominates` is `a[d] + 1e-9 >=
//! b[d]` on every dimension `d`, so the plane sweep applies exactly that
//! test on the chosen dimension — no fitting server is skipped — and the
//! histogram threshold starts at the bucket of `max(demand[d] - 1e-9,
//! 0)`, below which no fitting server can live.
//!
//! Exactness: the index answers every query with the *same server* the
//! naive oracle picks. BestFit's tie-breaking (cosine fuzz + norm) is
//! not a total order, so candidates are evaluated in ascending server
//! index with the shared [`better`](crate::placement::better)
//! comparison; TwoChoices consumes the shared
//! [`draw_pair`](crate::placement::draw_pair) so naive and indexed runs
//! stay on identical RNG streams. Cached vectors are the bit-exact
//! values the oracle would recompute (same expressions over the same
//! server state), cached norms are `norm()` of those same vectors, and
//! the cached-norm cosine evaluates the oracle's exact expression
//! (`dot / (|A| |D|)`, zero when the denominator is zero) — so fits,
//! scores, and ties agree bitwise.
//!
//! Invalidation rides on [`PhysicalServer::version`]: every mutation
//! choke point (`add_vm` / `remove_vm` / `deflate_vm` / `reinflate_vm` /
//! `set_up`) bumps the counter, and the cluster manager calls
//! [`PlacementIndex::refresh`] on the touched server afterwards;
//! `refresh` is a no-op when the version is unchanged. Debug builds
//! cross-check the whole index against recomputation from live server
//! state on every launch/exit ([`PlacementIndex::assert_consistent`]),
//! mirroring PR 2's aggregate checks.

use deflate_core::{ResourceKind, ResourceVector};
use hypervisor::PhysicalServer;
use simkit::SimRng;

use crate::placement::{avail_from_free, better, draw_pair, score, AvailabilityMode};
use crate::PlacementPolicy;

/// Buckets per (notion, dimension) histogram. Headroom is quantized to
/// `reference_capacity / NBUCKETS`; 64 buckets keeps the partition fine
/// enough that the planner's candidate counts stay sharp under load.
const NBUCKETS: usize = 64;
/// Cached availability notions: free, free+deflatable, free+preemptible.
const NOTIONS: usize = 3;
/// Resource dimensions (`ResourceKind::ALL`).
const DIMS: usize = ResourceKind::ALL.len();
/// Bucket sentinel for servers that are not placeable — down or
/// partitioned — and therefore absent from every histogram.
const UNBUCKETED: u16 = u16::MAX;

/// Index of a cached availability notion in [`Entry::vecs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Notion {
    Free = 0,
    Deflation = 1,
    Preemption = 2,
}

impl Notion {
    fn of(mode: AvailabilityMode) -> Notion {
        match mode {
            AvailabilityMode::Deflation => Notion::Deflation,
            AvailabilityMode::PreemptionOnly => Notion::Preemption,
        }
    }
}

/// Cached placement-relevant state of one server.
#[derive(Debug, Clone)]
struct Entry {
    /// Cached vectors, indexed by [`Notion`]. Bit-exact copies of what
    /// the naive oracle computes from live server state.
    vecs: [ResourceVector; NOTIONS],
    /// [`PhysicalServer::placeable`] at the last refresh: down *and*
    /// partitioned servers leave every histogram and fail every axis
    /// threshold, so neither can win a placement query.
    up: bool,
    /// The server's mutation counter at the last refresh.
    version: u64,
    /// Current histogram bucket per (notion, dimension); [`UNBUCKETED`]
    /// when down.
    bucket: [[u16; DIMS]; NOTIONS],
    /// This server's position inside each bucket's id vector, so a
    /// refresh can swap-remove it in O(1) instead of searching.
    pos: [[u32; DIMS]; NOTIONS],
}

/// The histogram-planned, plane-swept placement index. See the module
/// docs.
pub struct PlacementIndex {
    entries: Vec<Entry>,
    /// `NOTIONS × DIMS × NBUCKETS` *unordered* server-id vectors,
    /// flattened. Their lengths are the planner's population histogram,
    /// and for *selective* queries (few eligible servers) the candidate
    /// ids come straight from here instead of sweeping a whole plane.
    /// Membership moves are O(1) (push / swap-remove via [`Entry::pos`]);
    /// queries that need ascending id order sort the few candidates they
    /// gather.
    buckets: Vec<Vec<u32>>,
    /// `NOTIONS × DIMS` contiguous planes of per-server headroom along
    /// one dimension (`f64::NEG_INFINITY` for down servers, so they fail
    /// every threshold). The query's inner loop sweeps one plane.
    axis: Vec<f64>,
    /// `NOTIONS` contiguous planes of the cached vectors (plane-major
    /// copy of `entries[i].vecs`, so survivor checks after a sweep stay
    /// cache-local).
    cached: Vec<ResourceVector>,
    /// `NOTIONS` contiguous planes of `vecs[notion].norm()` — the
    /// BestFit score's magnitude component, precomputed per refresh so
    /// scoring a candidate costs one dot product and one divide.
    norms: Vec<f64>,
    /// Per-dimension bucket width: `reference_capacity[d] / NBUCKETS`.
    quantum: [f64; DIMS],
    /// Element-wise max capacity over the fleet (heterogeneity-safe).
    ref_capacity: ResourceVector,
}

impl std::fmt::Debug for PlacementIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementIndex")
            .field("servers", &self.entries.len())
            .field("ref_capacity", &self.ref_capacity)
            .finish()
    }
}

impl PlacementIndex {
    /// Builds the index for a fleet. Bucket quanta derive from the
    /// element-wise max capacity, so heterogeneous fleets bucket
    /// correctly (every headroom value lands in `0..NBUCKETS`).
    pub fn new(servers: &[PhysicalServer]) -> Self {
        let mut ref_capacity = ResourceVector::ZERO;
        for s in servers {
            let cap = s.capacity();
            for k in ResourceKind::ALL {
                if cap.get(k) > ref_capacity.get(k) {
                    ref_capacity.set(k, cap.get(k));
                }
            }
        }
        let mut quantum = [0.0; DIMS];
        for (d, k) in ResourceKind::ALL.into_iter().enumerate() {
            quantum[d] = ref_capacity.get(k) / NBUCKETS as f64;
        }
        let n = servers.len();
        let mut index = PlacementIndex {
            entries: vec![
                Entry {
                    vecs: [ResourceVector::ZERO; NOTIONS],
                    up: false,
                    // Sentinel: forces the first refresh (live versions
                    // start at 0 and only ever increment).
                    version: u64::MAX,
                    bucket: [[UNBUCKETED; DIMS]; NOTIONS],
                    pos: [[0; DIMS]; NOTIONS],
                };
                n
            ],
            buckets: vec![Vec::new(); NOTIONS * DIMS * NBUCKETS],
            axis: vec![f64::NEG_INFINITY; NOTIONS * DIMS * n],
            cached: vec![ResourceVector::ZERO; NOTIONS * n],
            norms: vec![0.0; NOTIONS * n],
            quantum,
            ref_capacity,
        };
        for (i, s) in servers.iter().enumerate() {
            index.refresh(i, s);
        }
        index
    }

    /// Number of indexed servers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index covers zero servers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Flat index of one bucket.
    fn bucket_idx(notion: usize, dim: usize, bucket: usize) -> usize {
        (notion * DIMS + dim) * NBUCKETS + bucket
    }

    /// One (notion, dimension) axis plane.
    fn axis_plane(&self, notion: usize, dim: usize) -> &[f64] {
        let n = self.entries.len();
        let base = (notion * DIMS + dim) * n;
        &self.axis[base..base + n]
    }

    /// One notion's plane of cached vectors.
    fn cached_plane(&self, notion: usize) -> &[ResourceVector] {
        let n = self.entries.len();
        &self.cached[notion * n..(notion + 1) * n]
    }

    /// One notion's plane of cached norms.
    fn norm_plane(&self, notion: usize) -> &[f64] {
        let n = self.entries.len();
        &self.norms[notion * n..(notion + 1) * n]
    }

    /// The bucket a headroom value falls into along one dimension.
    fn bucket_of(&self, dim: usize, value: f64) -> u16 {
        if self.quantum[dim] <= 0.0 {
            return 0;
        }
        ((value / self.quantum[dim]) as usize).min(NBUCKETS - 1) as u16
    }

    /// The lowest bucket that can hold a server fitting `demand_d` along
    /// `dim`, honoring `dominates`' `1e-9` slack.
    fn threshold_bucket(&self, dim: usize, demand_d: f64) -> usize {
        if self.quantum[dim] <= 0.0 {
            return 0;
        }
        ((((demand_d - 1e-9).max(0.0)) / self.quantum[dim]) as usize).min(NBUCKETS - 1)
    }

    /// Re-derives one server's cached entry from live state; no-op when
    /// the server's mutation counter matches the cache. O(1).
    pub fn refresh(&mut self, i: usize, server: &PhysicalServer) {
        let version = server.version();
        if self.entries[i].version == version {
            return;
        }
        let free = server.free();
        let vecs = [
            free,
            avail_from_free(server, &free, AvailabilityMode::Deflation),
            avail_from_free(server, &free, AvailabilityMode::PreemptionOnly),
        ];
        let up = server.placeable();
        let mut new_buckets = [[UNBUCKETED; DIMS]; NOTIONS];
        if up {
            for n in 0..NOTIONS {
                for (d, k) in ResourceKind::ALL.into_iter().enumerate() {
                    new_buckets[n][d] = self.bucket_of(d, vecs[n].get(k));
                }
            }
        }
        let len = self.entries.len();
        let id = i as u32;
        for n in 0..NOTIONS {
            for (d, k) in ResourceKind::ALL.into_iter().enumerate() {
                let old = self.entries[i].bucket[n][d];
                let new = new_buckets[n][d];
                if old != new {
                    if old != UNBUCKETED {
                        // O(1) removal: swap the last id into our slot
                        // and repoint its position.
                        let pos = self.entries[i].pos[n][d] as usize;
                        let set = &mut self.buckets[Self::bucket_idx(n, d, old as usize)];
                        debug_assert_eq!(set[pos], id, "position map desync");
                        set.swap_remove(pos);
                        if let Some(&moved) = set.get(pos) {
                            self.entries[moved as usize].pos[n][d] = pos as u32;
                        }
                    }
                    if new != UNBUCKETED {
                        let set = &mut self.buckets[Self::bucket_idx(n, d, new as usize)];
                        self.entries[i].pos[n][d] = set.len() as u32;
                        set.push(id);
                    }
                }
                self.axis[(n * DIMS + d) * len + i] = if up {
                    vecs[n].get(k)
                } else {
                    f64::NEG_INFINITY
                };
            }
            self.cached[n * len + i] = vecs[n];
            self.norms[n * len + i] = vecs[n].norm();
        }
        let e = &mut self.entries[i];
        e.vecs = vecs;
        e.up = up;
        e.version = version;
        e.bucket = new_buckets;
    }

    /// The query plan for one (notion, demand) pair: the sweep axis, the
    /// demand's value along it, and how many servers could fit at all.
    ///
    /// Any dimension is a *sound* pruning axis (a fitting server has
    /// enough headroom in every dimension), so the planner picks the
    /// most *selective* one: for each dimension it sums the eligible
    /// histogram buckets and sweeps the axis with the fewest eligible
    /// servers. That adapts to whatever dimension the fleet is actually
    /// bound on, instead of guessing from the demand's shape — and a
    /// zero count answers the query with `None` without touching any
    /// server state.
    fn plan(&self, notion: Notion, demand: &ResourceVector) -> (usize, usize, f64, usize) {
        let n = notion as usize;
        let mut best = (0usize, 0usize, 0.0f64, usize::MAX);
        for (d, k) in ResourceKind::ALL.into_iter().enumerate() {
            let k0 = self.threshold_bucket(d, demand.get(k));
            let eligible: usize = (k0..NBUCKETS)
                .map(|b| self.buckets[Self::bucket_idx(n, d, b)].len())
                .sum();
            if eligible < best.3 {
                best = (d, k0, demand.get(k), eligible);
            }
        }
        best
    }

    /// Whether a query with this many eligible servers should take the
    /// sublinear bucket path. Selective queries gather candidate ids
    /// from the sorted buckets (sorting a few dozen ids is cheaper than
    /// touching every server); dense ones sweep the axis plane linearly,
    /// which is never worse than the oracle's scan.
    fn selective(&self, eligible: usize) -> bool {
        8 * eligible <= self.entries.len()
    }

    /// Lowest-index server whose cached `notion` vector dominates
    /// `demand`. Selective queries test the few bucket candidates and
    /// keep the minimum fitting id (order-free, so unordered buckets are
    /// fine); dense queries sweep the axis plane in ascending server
    /// index, stopping at the first survivor. Either way candidates are
    /// tested with the same `dominates` on the same cached vectors, so
    /// the answer is identical.
    fn first_fit(&self, notion: Notion, demand: &ResourceVector) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let (d, k0, demand_d, eligible) = self.plan(notion, demand);
        if eligible == 0 {
            return None;
        }
        let n = notion as usize;
        let cached = self.cached_plane(n);
        if self.selective(eligible) {
            let mut best = u32::MAX;
            for k in k0..NBUCKETS {
                for &i in &self.buckets[Self::bucket_idx(n, d, k)] {
                    if i < best && cached[i as usize].dominates(demand) {
                        best = i;
                    }
                }
            }
            return (best != u32::MAX).then_some(best as usize);
        }
        let plane = self.axis_plane(n, d);
        plane
            .iter()
            .enumerate()
            .position(|(i, &h)| h + 1e-9 >= demand_d && cached[i].dominates(demand))
    }

    /// Best-scoring server whose cached `notion` vector dominates
    /// `demand`, ranked exactly like the naive oracle: candidates are
    /// evaluated in ascending server index (scan order is part of the
    /// contract — the shared fuzzy comparison is intransitive), each
    /// survivor scored with its precomputed norm. Selective queries sort
    /// the few candidate ids gathered from the buckets; dense queries
    /// sweep the axis plane.
    fn best_fit(&self, notion: Notion, demand: &ResourceVector) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let (d, k0, demand_d, eligible) = self.plan(notion, demand);
        if eligible == 0 {
            return None;
        }
        let n = notion as usize;
        let cached = self.cached_plane(n);
        let norms = self.norm_plane(n);
        let nd = demand.norm();
        let mut best: Option<(usize, (f64, f64))> = None;
        let mut consider = |i: usize| {
            if !cached[i].dominates(demand) {
                return;
            }
            // The oracle's `score` with the norm component precomputed:
            // same expression, same inputs, same bits.
            let na = norms[i];
            let denom = na * nd;
            let cos = if denom == 0.0 {
                0.0
            } else {
                cached[i].dot(demand) / denom
            };
            let sc = (cos, na);
            debug_assert_eq!(sc, score(&cached[i], demand));
            if best.map_or(true, |(_, bs)| better(sc, bs)) {
                best = Some((i, sc));
            }
        };
        if self.selective(eligible) {
            let mut candidates: Vec<u32> = Vec::with_capacity(eligible);
            for k in k0..NBUCKETS {
                candidates.extend_from_slice(&self.buckets[Self::bucket_idx(n, d, k)]);
            }
            candidates.sort_unstable();
            for i in candidates {
                consider(i as usize);
            }
        } else {
            let plane = self.axis_plane(n, d);
            for (i, &h) in plane.iter().enumerate() {
                if h + 1e-9 >= demand_d {
                    consider(i);
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Indexed [`choose_server_with`](crate::placement::choose_server_with):
    /// same policy semantics, same two-tier free-then-availability
    /// preference, same RNG consumption, same chosen server — sublinear
    /// instead of a fleet scan.
    pub fn choose(
        &self,
        policy: PlacementPolicy,
        servers: &[PhysicalServer],
        demand: &ResourceVector,
        mode: AvailabilityMode,
        rng: &mut SimRng,
    ) -> Option<usize> {
        debug_assert_eq!(self.entries.len(), servers.len(), "index covers the fleet");
        let avail = Notion::of(mode);
        match policy {
            PlacementPolicy::FirstFit => self
                .first_fit(Notion::Free, demand)
                .or_else(|| self.first_fit(avail, demand)),
            PlacementPolicy::BestFit => self
                .best_fit(Notion::Free, demand)
                .or_else(|| self.best_fit(avail, demand)),
            PlacementPolicy::TwoChoices => {
                if servers.is_empty() {
                    return None;
                }
                let (a, b) = draw_pair(rng, servers.len());
                let free_fits = |i: usize| {
                    let e = &self.entries[i];
                    e.up && e.vecs[Notion::Free as usize].dominates(demand)
                };
                let vec_of = |i: usize, n: Notion| &self.entries[i].vecs[n as usize];
                match (free_fits(a), free_fits(b)) {
                    (true, true) => Some(
                        if score(vec_of(a, Notion::Free), demand)
                            >= score(vec_of(b, Notion::Free), demand)
                        {
                            a
                        } else {
                            b
                        },
                    ),
                    (true, false) => Some(a),
                    (false, true) => Some(b),
                    (false, false) => {
                        if let Some(i) = self.first_fit(Notion::Free, demand) {
                            return Some(i);
                        }
                        let avail_fits = |i: usize| {
                            let e = &self.entries[i];
                            e.up && e.vecs[avail as usize].dominates(demand)
                        };
                        match (avail_fits(a), avail_fits(b)) {
                            (true, true) => Some(
                                if score(vec_of(a, avail), demand)
                                    >= score(vec_of(b, avail), demand)
                                {
                                    a
                                } else {
                                    b
                                },
                            ),
                            (true, false) => Some(a),
                            (false, true) => Some(b),
                            (false, false) => self.first_fit(avail, demand),
                        }
                    }
                }
            }
        }
    }

    /// Deterministic "most headroom" query for migration targeting: the
    /// up server (other than `exclude`, usually the migration source)
    /// whose cached Deflation-notion availability dominates `demand`,
    /// ranked by that availability's norm. Unlike [`choose`], this draws
    /// no RNG and prefers the *roomiest* host rather than the tightest
    /// fit — a migration destination should absorb the VM with as little
    /// donor deflation as possible. Ties keep the lowest server index.
    pub fn best_headroom(
        &self,
        servers: &[PhysicalServer],
        demand: &ResourceVector,
        exclude: Option<usize>,
    ) -> Option<usize> {
        debug_assert_eq!(self.entries.len(), servers.len(), "index covers the fleet");
        let n = Notion::Deflation as usize;
        let cached = self.cached_plane(n);
        let norms = self.norm_plane(n);
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.up || Some(i) == exclude || !cached[i].dominates(demand) {
                continue;
            }
            if best.map_or(true, |(_, bn)| norms[i] > bn) {
                best = Some((i, norms[i]));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Panics when any cached entry, histogram count, axis value, or
    /// cached norm disagrees with a full recomputation from live server
    /// state — the index's analogue of PR 2's
    /// `assert_aggregates_consistent`. O(servers); debug builds run it
    /// on every launch/exit, tests may call it in release too.
    pub fn assert_consistent(&self, servers: &[PhysicalServer]) {
        assert_eq!(
            self.entries.len(),
            servers.len(),
            "index entry count != fleet size"
        );
        let len = self.entries.len();
        let mut populated = 0usize;
        for (i, (e, s)) in self.entries.iter().zip(servers).enumerate() {
            assert_eq!(e.version, s.version(), "server {i}: stale index version");
            assert_eq!(e.up, s.placeable(), "server {i}: stale placeability flag");
            let free = s.free();
            let fresh = [
                free,
                avail_from_free(s, &free, AvailabilityMode::Deflation),
                avail_from_free(s, &free, AvailabilityMode::PreemptionOnly),
            ];
            for (n, fresh_n) in fresh.iter().enumerate() {
                assert_eq!(
                    e.vecs[n], *fresh_n,
                    "server {i}: cached vector desync (notion {n})"
                );
                assert_eq!(
                    self.cached[n * len + i],
                    *fresh_n,
                    "server {i}: cached plane desync (notion {n})"
                );
                assert_eq!(
                    self.norms[n * len + i].to_bits(),
                    fresh_n.norm().to_bits(),
                    "server {i}: cached norm desync (notion {n})"
                );
                for (d, k) in ResourceKind::ALL.into_iter().enumerate() {
                    let expect_axis = if e.up {
                        fresh_n.get(k)
                    } else {
                        f64::NEG_INFINITY
                    };
                    assert_eq!(
                        self.axis[(n * DIMS + d) * len + i].to_bits(),
                        expect_axis.to_bits(),
                        "server {i}: stale axis value (notion {n}, dim {d})"
                    );
                    let expect = if e.up {
                        self.bucket_of(d, fresh_n.get(k))
                    } else {
                        UNBUCKETED
                    };
                    assert_eq!(
                        e.bucket[n][d], expect,
                        "server {i}: wrong bucket (notion {n}, dim {d})"
                    );
                    if expect != UNBUCKETED {
                        let set = &self.buckets[Self::bucket_idx(n, d, expect as usize)];
                        assert_eq!(
                            set.get(e.pos[n][d] as usize),
                            Some(&(i as u32)),
                            "server {i}: position map desync (notion {n}, dim {d})"
                        );
                    }
                }
            }
            if e.up {
                populated += 1;
            }
        }
        for n in 0..NOTIONS {
            for d in 0..DIMS {
                let total: usize = (0..NBUCKETS)
                    .map(|k| self.buckets[Self::bucket_idx(n, d, k)].len())
                    .sum();
                assert_eq!(
                    total, populated,
                    "bucket membership count != up servers (notion {n}, dim {d})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::choose_server_with;
    use deflate_core::{ServerId, VmId};
    use hypervisor::{Vm, VmPriority};

    fn capacity() -> ResourceVector {
        ResourceVector::new(16.0, 65_536.0, 400.0, 400.0)
    }

    fn fleet(n: u64) -> Vec<PhysicalServer> {
        (0..n)
            .map(|i| PhysicalServer::new(ServerId(i), capacity()))
            .collect()
    }

    fn spec(cpu: f64) -> ResourceVector {
        ResourceVector::new(cpu, cpu * 2048.0, cpu * 10.0, cpu * 10.0)
    }

    #[test]
    fn matches_naive_on_a_mixed_fleet() {
        let mut servers = fleet(12);
        for (i, s) in servers.iter_mut().enumerate() {
            for v in 0..(i % 5) {
                let pri = if v % 2 == 0 {
                    VmPriority::High
                } else {
                    VmPriority::Low
                };
                s.add_vm(Vm::new(VmId((i * 10 + v) as u64), spec(3.0), pri));
            }
        }
        servers[3].set_up(false);
        let index = PlacementIndex::new(&servers);
        index.assert_consistent(&servers);
        for policy in PlacementPolicy::ALL {
            for mode in [
                AvailabilityMode::Deflation,
                AvailabilityMode::PreemptionOnly,
            ] {
                for cpu in [1.0, 4.0, 9.0, 15.0, 40.0] {
                    let demand = spec(cpu);
                    let mut r1 = SimRng::seed_from_u64(cpu as u64 + 99);
                    let mut r2 = SimRng::seed_from_u64(cpu as u64 + 99);
                    assert_eq!(
                        index.choose(policy, &servers, &demand, mode, &mut r1),
                        choose_server_with(policy, &servers, &demand, mode, &mut r2),
                        "{} cpu={cpu}",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn refresh_tracks_mutations_and_versions() {
        let mut servers = fleet(2);
        let mut index = PlacementIndex::new(&servers);
        servers[0].add_vm(Vm::new(VmId(1), spec(8.0), VmPriority::Low));
        index.refresh(0, &servers[0]);
        index.assert_consistent(&servers);
        // Unchanged version: refresh must be a no-op (and stay consistent).
        index.refresh(1, &servers[1]);
        index.assert_consistent(&servers);
        // Down servers leave every histogram…
        servers[0].set_up(false);
        index.refresh(0, &servers[0]);
        index.assert_consistent(&servers);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            index.choose(
                PlacementPolicy::FirstFit,
                &servers,
                &spec(1.0),
                AvailabilityMode::Deflation,
                &mut rng,
            ),
            Some(1)
        );
        // …and re-enter them on recovery.
        servers[0].set_up(true);
        index.refresh(0, &servers[0]);
        index.assert_consistent(&servers);
        assert_eq!(
            index.choose(
                PlacementPolicy::FirstFit,
                &servers,
                &spec(1.0),
                AvailabilityMode::Deflation,
                &mut rng,
            ),
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "stale index version")]
    fn stale_index_is_caught() {
        let mut servers = fleet(1);
        let index = PlacementIndex::new(&servers);
        servers[0].add_vm(Vm::new(VmId(1), spec(2.0), VmPriority::High));
        index.assert_consistent(&servers);
    }

    #[test]
    fn partitioned_server_is_evicted_without_losing_capacity() {
        let mut servers = fleet(2);
        servers[0].add_vm(Vm::new(VmId(1), spec(2.0), VmPriority::Low));
        let mut index = PlacementIndex::new(&servers);
        // Partition server 0: it leaves every histogram like a down
        // server would, but stays up and keeps its VMs.
        servers[0].set_connected(false);
        index.refresh(0, &servers[0]);
        index.assert_consistent(&servers);
        let mut rng = SimRng::seed_from_u64(4);
        for policy in PlacementPolicy::ALL {
            let mut r1 = SimRng::seed_from_u64(11);
            let mut r2 = SimRng::seed_from_u64(11);
            assert_eq!(
                index.choose(
                    policy,
                    &servers,
                    &spec(1.0),
                    AvailabilityMode::Deflation,
                    &mut r1,
                ),
                choose_server_with(
                    policy,
                    &servers,
                    &spec(1.0),
                    AvailabilityMode::Deflation,
                    &mut r2,
                ),
                "{}: indexed and naive must agree on partitioned fleets",
                policy.name()
            );
        }
        assert_eq!(
            index.choose(
                PlacementPolicy::FirstFit,
                &servers,
                &spec(1.0),
                AvailabilityMode::Deflation,
                &mut rng,
            ),
            Some(1),
            "partitioned server must not win placement"
        );
        assert_eq!(
            index.best_headroom(&servers, &spec(1.0), None),
            Some(1),
            "migration targeting skips partitioned servers"
        );
        // Heal: it rejoins the histograms with its capacity intact.
        servers[0].set_connected(true);
        index.refresh(0, &servers[0]);
        index.assert_consistent(&servers);
        assert_eq!(
            index.choose(
                PlacementPolicy::FirstFit,
                &servers,
                &spec(1.0),
                AvailabilityMode::Deflation,
                &mut rng,
            ),
            Some(0)
        );
    }

    #[test]
    fn heterogeneous_capacities_bucket_safely() {
        let mut servers = vec![
            PhysicalServer::new(
                ServerId(0),
                ResourceVector::new(8.0, 32_768.0, 200.0, 200.0),
            ),
            PhysicalServer::new(ServerId(1), capacity()),
        ];
        servers[1].add_vm(Vm::new(VmId(1), spec(10.0), VmPriority::High));
        let index = PlacementIndex::new(&servers);
        index.assert_consistent(&servers);
        // Demands near each server's capacity edge pick the same server
        // as the oracle.
        for cpu in [0.5, 5.9, 7.9, 8.1, 15.9] {
            let demand = spec(cpu);
            let mut r1 = SimRng::seed_from_u64(3);
            let mut r2 = SimRng::seed_from_u64(3);
            assert_eq!(
                index.choose(
                    PlacementPolicy::BestFit,
                    &servers,
                    &demand,
                    AvailabilityMode::Deflation,
                    &mut r1,
                ),
                choose_server_with(
                    PlacementPolicy::BestFit,
                    &servers,
                    &demand,
                    AvailabilityMode::Deflation,
                    &mut r2,
                ),
                "cpu={cpu}"
            );
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        let servers: Vec<PhysicalServer> = Vec::new();
        let index = PlacementIndex::new(&servers);
        assert!(index.is_empty());
        index.assert_consistent(&servers);
        let mut rng = SimRng::seed_from_u64(1);
        for policy in PlacementPolicy::ALL {
            assert_eq!(
                index.choose(
                    policy,
                    &servers,
                    &spec(1.0),
                    AvailabilityMode::Deflation,
                    &mut rng,
                ),
                None
            );
        }
    }
}
