//! Manager↔server network partitions: reachability tracking, the
//! divergence log a partitioned server accumulates while it runs
//! autonomously, and the reconcile outcome the manager produces when the
//! partition heals.
//!
//! A partition is the *reachable-but-disconnected* failure mode: the
//! server keeps running its VMs and its local controller keeps making
//! decisions (distress sampling, emergency reinflation, breaker
//! bookkeeping, guest OOM kills), but the manager can neither command
//! nor observe it. The manager freezes its view of the server — the
//! cached [`hypervisor::ServerAggregates`] contribution, the hosted-VM
//! set, the placement-index bucket — at the last observed snapshot, and
//! the local controller records everything it does alone in a typed
//! [`DivergenceLog`]. On heal,
//! [`ClusterManager::heal_server`](crate::manager::ClusterManager::heal_server)
//! replays the log delta-exactly against the stale snapshot so the
//! manager's books converge with reality in one anti-entropy pass.
//!
//! Reachability state machine (one per server):
//!
//! ```text
//!            partition_server            fail_server
//!    Up ────────────────────▶ Partitioned    Up ──────────▶ Down
//!     ▲                           │            ▲              │
//!     │   heal_server (up)        │            │ recover      │
//!     └───────────────────────────┤            └──────────────┘
//!                                 │ heal_server (crashed
//!                                 ▼  behind the partition)
//!                               Down
//! ```

use std::collections::{HashMap, HashSet};

use deflate_core::{ServerId, VmId};
use hypervisor::ServerAggregates;
use simkit::{SeqHash, SimTime};

use crate::manager::VmDistress;

/// The manager's view of one server's control-plane liveness. Orthogonal
/// to the server's physical `up` flag: a partitioned server may be
/// running fine (the common case) or may crash behind the partition —
/// the manager only learns which at heal time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reachability {
    /// Connected and observable; the normal state.
    Up,
    /// Physically up (as far as the manager knows) but unreachable: no
    /// commands, no observations, placement excluded, totals frozen.
    Partitioned,
    /// Observed down (crashed while reachable, or discovered crashed at
    /// heal time).
    Down,
}

/// One action a partitioned server's local controller took while the
/// manager could not observe it. Replayed at heal time to settle
/// counters and lifecycle maps the manager missed.
#[derive(Debug, Clone, PartialEq)]
pub enum DivergenceEvent {
    /// A VM's lifetime ended naturally; survivors were reinflated
    /// locally.
    Exited {
        /// When the VM departed.
        at: SimTime,
        /// The departed VM.
        vm: VmId,
    },
    /// Sustained hard distress outlived the grace window and the guest
    /// OOM killer fired; survivors were reinflated locally. The manager
    /// relaunches the VM only after the heal — autonomous mode has no
    /// placement authority.
    OomKilled {
        /// When the killer fired.
        at: SimTime,
        /// The killed VM.
        vm: VmId,
    },
    /// Emergency reinflation granted a distressed guest memory from the
    /// local free pool and healthy co-located donors.
    EmergencyReinflated {
        /// When the rescue ran.
        at: SimTime,
        /// The rescued VM.
        vm: VmId,
        /// Memory granted (MiB).
        granted_mb: f64,
    },
    /// The per-VM deflation circuit breaker tripped open locally.
    BreakerOpened {
        /// When it tripped.
        at: SimTime,
        /// The shielded VM.
        vm: VmId,
        /// Lifetime trip count after this trip.
        trips: u32,
    },
    /// The breaker closed after enough healthy samples.
    BreakerClosed {
        /// When it closed.
        at: SimTime,
        /// The VM whose breaker closed.
        vm: VmId,
    },
    /// A migration reservation stranded by the partition (the manager
    /// held capacity here for an inbound move it can no longer command)
    /// was cleared locally: hold released, donors made whole.
    ReservationCleared {
        /// When the local controller cleared it.
        at: SimTime,
        /// The VM whose inbound move the reservation served.
        vm: VmId,
    },
    /// The server crashed behind the partition: every hosted VM died
    /// unobserved. The manager discovers the losses at heal time.
    Crashed {
        /// When the crash landed.
        at: SimTime,
    },
    /// The server rebooted behind the partition (empty, still
    /// unreachable).
    Restarted {
        /// When it came back up.
        at: SimTime,
    },
}

/// Append-only, typed record of everything a partitioned server did
/// while the manager could not watch. Replayed in order at heal time.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DivergenceLog {
    events: Vec<DivergenceEvent>,
}

impl DivergenceLog {
    /// Appends one autonomous action.
    pub fn push(&mut self, ev: DivergenceEvent) {
        self.events.push(ev);
    }

    /// Number of divergent events accumulated.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the partition window saw no autonomous activity —
    /// reconciliation of an empty log is state-neutral.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, in the order they happened.
    pub fn events(&self) -> &[DivergenceEvent] {
        &self.events
    }
}

/// Everything the manager parks for one partitioned server: the frozen
/// aggregate snapshot backing the cached cluster totals, the frozen
/// hosted-VM view, the per-VM distress state handed to the local
/// controller, and the divergence log.
#[derive(Debug)]
pub(crate) struct PartitionSession {
    /// When the partition opened.
    pub(crate) since: SimTime,
    /// The server's aggregate contribution at partition time. The
    /// cached [`ClusterTotals`](crate::manager) keep carrying exactly
    /// this until heal, when one `apply_delta(frozen, live)` settles
    /// the whole window.
    pub(crate) frozen: ServerAggregates,
    /// VMs hosted at partition time — the manager's (stale) index view.
    pub(crate) vms: HashSet<VmId, SeqHash>,
    /// The low-priority subset of `vms`, so crash losses discovered at
    /// heal time can be classified without the dead VM objects.
    pub(crate) low: HashSet<VmId, SeqHash>,
    /// Distress/breaker state parked from the manager's map at
    /// partition time and advanced locally by `autonomous_sample`.
    pub(crate) distress: HashMap<VmId, VmDistress, SeqHash>,
    /// What the server did alone.
    pub(crate) log: DivergenceLog,
}

/// What one anti-entropy pass at heal time found and repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileOutcome {
    /// The healed server.
    pub server: ServerId,
    /// Divergence-log length (autonomous events replayed).
    pub divergence: usize,
    /// VMs that departed naturally while partitioned.
    pub exited: Vec<VmId>,
    /// VMs the local OOM killer took; candidates for relaunch now that
    /// the manager can place again.
    pub oom_killed: Vec<VmId>,
    /// High-priority VMs that died with an unobserved crash; the caller
    /// relaunches them through normal placement.
    pub lost_high: Vec<VmId>,
    /// Low-priority VMs that died with an unobserved crash; counted as
    /// preempted.
    pub lost_low: Vec<VmId>,
    /// Whether the server crashed behind the partition.
    pub crashed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_log_orders_and_counts() {
        let mut log = DivergenceLog::default();
        assert!(log.is_empty());
        log.push(DivergenceEvent::Exited {
            at: SimTime::from_secs(10),
            vm: VmId(1),
        });
        log.push(DivergenceEvent::Crashed {
            at: SimTime::from_secs(20),
        });
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
        assert!(matches!(
            log.events()[0],
            DivergenceEvent::Exited { vm: VmId(1), .. }
        ));
        assert!(matches!(log.events()[1], DivergenceEvent::Crashed { .. }));
    }
}
