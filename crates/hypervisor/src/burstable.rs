//! Burstable VMs: the §8 comparison point.
//!
//! The paper argues a deflatable VM's management complexity is "at-par
//! with burstable VMs \[81\] that are already being offered by cloud
//! providers … the key difference is that deflation is only performed
//! under resource pressure, and not over the entire lifetime of the VM".
//!
//! This module implements the burstable side of that comparison: a
//! credit-based CPU model after AWS T-instances / Azure B-series. The VM
//! earns credits while it uses less than its baseline share and spends
//! them to burst to full speed; once the bucket is empty it is throttled
//! to the baseline *whether or not the host is under pressure* — which
//! is exactly what deflation avoids.

use simkit::SimDuration;

/// Credit-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct BurstableParams {
    /// Baseline CPU share per vCPU (e.g. 0.2 = 20 % of a core).
    pub baseline_fraction: f64,
    /// Credit bucket capacity in core-seconds.
    pub credit_cap: f64,
    /// Credits at boot (providers grant launch credits).
    pub initial_credits: f64,
    /// vCPUs.
    pub vcpus: f64,
}

impl Default for BurstableParams {
    fn default() -> Self {
        BurstableParams {
            baseline_fraction: 0.2,
            credit_cap: 4.0 * 3_600.0, // 4 core-hours.
            initial_credits: 600.0,
            vcpus: 4.0,
        }
    }
}

/// A burstable VM's CPU-credit state machine.
#[derive(Debug, Clone, Copy)]
pub struct CreditModel {
    params: BurstableParams,
    credits: f64,
}

impl CreditModel {
    /// Creates a model with launch credits.
    pub fn new(params: BurstableParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.baseline_fraction),
            "baseline fraction must lie in [0, 1]"
        );
        CreditModel {
            params,
            credits: params.initial_credits.min(params.credit_cap),
        }
    }

    /// Current credit balance (core-seconds).
    pub fn credits(&self) -> f64 {
        self.credits
    }

    /// The baseline CPU allocation (cores).
    pub fn baseline_cores(&self) -> f64 {
        self.params.baseline_fraction * self.params.vcpus
    }

    /// Advances the model by `dt` with the application demanding
    /// `demand_cores`; returns the cores actually delivered.
    ///
    /// Demand at or below baseline accrues credits; demand above baseline
    /// spends them, and once the bucket is empty the VM is clamped to its
    /// baseline.
    pub fn step(&mut self, dt: SimDuration, demand_cores: f64) -> f64 {
        let secs = dt.as_secs_f64();
        let demand = demand_cores.clamp(0.0, self.params.vcpus);
        let baseline = self.baseline_cores();

        if demand <= baseline {
            // Idle headroom earns credits.
            self.credits = (self.credits + (baseline - demand) * secs).min(self.params.credit_cap);
            return demand;
        }

        // Bursting: spend credits for the above-baseline share.
        let burst_cores = demand - baseline;
        let burst_needed = burst_cores * secs;
        if self.credits >= burst_needed {
            self.credits -= burst_needed;
            demand
        } else {
            // Partial burst until credits run out, then baseline.
            let burst_secs = self.credits / burst_cores;
            let delivered_core_secs = demand * burst_secs + baseline * (secs - burst_secs);
            self.credits = 0.0;
            delivered_core_secs / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CreditModel {
        CreditModel::new(BurstableParams::default())
    }

    #[test]
    fn idle_accrues_credits_to_cap() {
        let mut m = CreditModel::new(BurstableParams {
            credit_cap: 100.0,
            initial_credits: 0.0,
            ..BurstableParams::default()
        });
        // Fully idle: accrues baseline (0.8 cores) per second.
        let delivered = m.step(SimDuration::from_secs(10), 0.0);
        assert_eq!(delivered, 0.0);
        assert!((m.credits() - 8.0).abs() < 1e-9);
        // Cap is enforced.
        m.step(SimDuration::from_hours(10), 0.0);
        assert_eq!(m.credits(), 100.0);
    }

    #[test]
    fn bursting_spends_credits() {
        let mut m = model();
        let before = m.credits();
        let delivered = m.step(SimDuration::from_secs(60), 4.0);
        assert_eq!(delivered, 4.0, "full burst while credits last");
        // Spent (4 − 0.8) × 60 = 192 core-seconds.
        assert!((before - m.credits() - 192.0).abs() < 1e-9);
    }

    #[test]
    fn exhausted_credits_throttle_to_baseline() {
        let mut m = CreditModel::new(BurstableParams {
            initial_credits: 0.0,
            ..BurstableParams::default()
        });
        let delivered = m.step(SimDuration::from_secs(60), 4.0);
        assert!((delivered - m.baseline_cores()).abs() < 1e-9);
    }

    #[test]
    fn partial_burst_midway_through_a_step() {
        let mut m = CreditModel::new(BurstableParams {
            initial_credits: 32.0, // 10 s of 3.2-core burst.
            ..BurstableParams::default()
        });
        let delivered = m.step(SimDuration::from_secs(20), 4.0);
        // 10 s at 4 cores + 10 s at 0.8 → mean 2.4 cores.
        assert!((delivered - 2.4).abs() < 1e-9, "delivered {delivered}");
        assert_eq!(m.credits(), 0.0);
    }

    #[test]
    fn deflation_beats_burstable_for_sustained_work() {
        // A sustained 4-core workload over 2 hours, with one 20-minute
        // window of host pressure that deflates the deflatable VM by 50%.
        let mut burst = model();
        let step = SimDuration::from_secs(60);
        let mut burst_work = 0.0;
        let mut defl_work = 0.0;
        for minute in 0..120 {
            burst_work += burst.step(step, 4.0) * 60.0;
            // Deflatable VM: full speed except minutes 40–59.
            let deflated = (40..60).contains(&minute);
            let cores = if deflated { 2.0 } else { 4.0 };
            defl_work += cores * 60.0;
        }
        assert!(
            defl_work > 1.5 * burst_work,
            "deflatable {defl_work} vs burstable {burst_work} core-seconds"
        );
    }
}
