//! End-to-end cascade deflation across the full stack: application agent
//! (apps) → guest OS + hypervisor (hypervisor) → controller
//! (deflate-core), with resource-conservation invariants.

use apps::{JvmApp, JvmParams, MemcachedApp, MemcachedParams};
use deflate_core::{CascadeConfig, ResourceKind, ResourceVector, VmId};
use hypervisor::{Vm, VmPriority};
use simkit::{SimDuration, SimTime};

fn spec() -> ResourceVector {
    ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0)
}

/// Effective + unplugged + overcommitted must always equal the spec.
fn assert_conservation(vm: &Vm) {
    let st = vm.state();
    let st = st.borrow();
    let sum = st.effective() + st.unplugged + st.overcommitted;
    assert!(
        sum.approx_eq(&st.spec, 1e-6),
        "conservation violated: effective {} + unplugged {} + overcommitted {} != spec {}",
        st.effective(),
        st.unplugged,
        st.overcommitted,
        st.spec
    );
}

#[test]
fn full_cascade_conserves_resources_through_cycles() {
    let app = MemcachedApp::new(MemcachedParams::default());
    let vm = Vm::new(VmId(1), spec(), VmPriority::Low);
    app.init_usage(&vm.state());
    let agent = app.agent(vm.state());
    let mut vm = vm.with_agent(Box::new(agent));

    // Three deflate/reinflate cycles of varying sizes.
    for (i, frac) in [0.25, 0.5, 0.4].iter().enumerate() {
        let t = SimTime::from_secs(i as u64 * 100);
        let target = spec().scale(*frac);
        let out = vm.deflate(t, &target, &CascadeConfig::FULL);
        assert!(out.met_target(), "cycle {i}: shortfall {}", out.shortfall);
        assert_conservation(&vm);

        let got = vm.reinflate(t + SimDuration::from_secs(50), &target);
        assert!(got.approx_eq(&target, 1e-6), "cycle {i}: got {got}");
        assert_conservation(&vm);
    }

    // After all cycles the VM is back to full size and full speed.
    assert!(vm.effective().approx_eq(&spec(), 1e-6));
    assert!(app.normalized_perf(&vm.view()) > 0.99);
    assert_eq!(app.cache_mb(), MemcachedParams::default().base_cache_mb);
}

#[test]
fn layer_contributions_sum_to_total() {
    let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
    vm.set_usage(8_192.0, 2.0);
    let out = vm.deflate(SimTime::ZERO, &spec().scale(0.5), &CascadeConfig::VM_LEVEL);
    let sum = out.os.reclaimed + out.hypervisor.reclaimed;
    assert!(sum.approx_eq(&out.total_reclaimed, 1e-9));
    assert_conservation(&vm);
}

#[test]
fn app_layer_reduces_hypervisor_involvement() {
    // With an agent, most memory is relinquished and unplugged; without,
    // the hypervisor must swap.
    let target = ResourceVector::memory(8_192.0);

    let app = MemcachedApp::new(MemcachedParams::default());
    let vm = Vm::new(VmId(1), spec(), VmPriority::Low);
    app.init_usage(&vm.state());
    let agent = app.agent(vm.state());
    let mut vm_aware = vm.with_agent(Box::new(agent));
    let out_aware = vm_aware.deflate(SimTime::ZERO, &target, &CascadeConfig::FULL);

    let plain = MemcachedApp::new(MemcachedParams::default());
    let vm = Vm::new(VmId(2), spec(), VmPriority::Low);
    plain.init_usage(&vm.state());
    let mut vm_plain = vm;
    let out_plain = vm_plain.deflate(SimTime::ZERO, &target, &CascadeConfig::VM_LEVEL);

    let hv_aware = out_aware.hypervisor.reclaimed.get(ResourceKind::Memory);
    let hv_plain = out_plain.hypervisor.reclaimed.get(ResourceKind::Memory);
    assert!(
        hv_aware < hv_plain * 0.5,
        "agent should shrink hypervisor share: {hv_aware} vs {hv_plain}"
    );
    // And deflation completes faster (no swap of used pages).
    assert!(out_aware.latency < out_plain.latency);
}

#[test]
fn deadline_bounds_latency() {
    let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
    vm.set_usage(14_000.0, 3.0);
    let deadline = SimDuration::from_secs(5);
    let cfg = CascadeConfig::VM_LEVEL.with_deadline(deadline);
    let out = vm.deflate(SimTime::ZERO, &ResourceVector::memory(10_000.0), &cfg);
    assert!(
        out.latency <= deadline + SimDuration::from_millis(1),
        "latency {} exceeds deadline",
        out.latency
    );
    // Partial reclamation is reported honestly.
    assert!(!out.met_target());
    assert!(!out.total_reclaimed.is_zero());
}

#[test]
fn jvm_agent_end_to_end_prefers_gc_over_swap() {
    let app = JvmApp::new(JvmParams::default());
    let vm = Vm::new(VmId(1), spec(), VmPriority::Low);
    app.init_usage(&vm.state());
    let agent = app.agent(vm.state());
    let mut vm = vm.with_agent(Box::new(agent));

    let _ = vm.deflate(
        SimTime::ZERO,
        &ResourceVector::memory(6_144.0),
        &CascadeConfig::FULL,
    );
    // Heap shrank; nothing but a sliver of blind host reclaim swapped.
    assert!(app.heap_mb() < JvmParams::default().max_heap_mb);
    assert!(vm.view().swapped_mb < 100.0);
    assert!(app.gc_triggers() >= 1);
    assert_conservation(&vm);
}

#[test]
fn repeated_partial_deflations_accumulate() {
    let mut vm = Vm::new(VmId(1), spec(), VmPriority::Low);
    vm.set_usage(2_048.0, 1.0);
    for _ in 0..4 {
        let _ = vm.deflate(
            SimTime::ZERO,
            &spec().scale(0.125),
            &CascadeConfig::VM_LEVEL,
        );
    }
    let total_deflation = vm.view().deflation;
    for k in ResourceKind::ALL {
        assert!(
            (total_deflation.get(k) - 0.5).abs() < 0.01,
            "{k}: {}",
            total_deflation.get(k)
        );
    }
    assert_conservation(&vm);
}
