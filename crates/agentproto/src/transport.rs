//! An in-memory duplex channel with simulated delivery delay and loss.
//!
//! The paper's components talk over HTTP on a LAN; what matters to the
//! cascade is not the socket but the *failure semantics*: responses can
//! arrive late (past the controller's deadline) or never (agent died,
//! packet dropped). [`Duplex`] models exactly that: each direction is a
//! queue of `(deliver_at, line)` pairs; a configurable delay and a
//! deterministic drop predicate stand in for the network.

use std::collections::VecDeque;

use simkit::{SimDuration, SimTime};

/// One direction of a duplex link.
#[derive(Debug, Default)]
struct Lane {
    queue: VecDeque<(SimTime, String)>,
    sent: u64,
    dropped: u64,
}

impl Lane {
    fn send(&mut self, deliver_at: SimTime, line: String) {
        // Preserve FIFO per deliver time: queues are appended in send
        // order and drained by deliver_at.
        self.queue.push_back((deliver_at, line));
        self.sent += 1;
    }

    fn recv(&mut self, now: SimTime) -> Vec<String> {
        let mut out = Vec::new();
        while let Some((at, _)) = self.queue.front() {
            if *at <= now {
                let (_, line) = self.queue.pop_front().expect("front exists");
                out.push(line);
            } else {
                break;
            }
        }
        out
    }
}

/// A bidirectional link between a controller and an agent.
#[derive(Debug)]
pub struct Duplex {
    to_agent: Lane,
    to_controller: Lane,
    /// One-way delivery delay.
    pub delay: SimDuration,
    /// Drop every Nth message (0 = lossless); deterministic so tests and
    /// simulations replay exactly.
    pub drop_every: u64,
    counter: u64,
}

impl Duplex {
    /// Creates a lossless link with the given one-way delay.
    pub fn new(delay: SimDuration) -> Self {
        Duplex {
            to_agent: Lane::default(),
            to_controller: Lane::default(),
            delay,
            drop_every: 0,
            counter: 0,
        }
    }

    /// Makes the link drop every `n`th message.
    pub fn with_drop_every(mut self, n: u64) -> Self {
        self.drop_every = n;
        self
    }

    fn should_drop(&mut self) -> bool {
        if self.drop_every == 0 {
            return false;
        }
        self.counter += 1;
        self.counter % self.drop_every == 0
    }

    /// Controller → agent.
    pub fn send_to_agent(&mut self, now: SimTime, line: String) {
        if self.should_drop() {
            self.to_agent.dropped += 1;
            return;
        }
        self.to_agent.send(now + self.delay, line);
    }

    /// Agent → controller.
    pub fn send_to_controller(&mut self, now: SimTime, line: String) {
        if self.should_drop() {
            self.to_controller.dropped += 1;
            return;
        }
        self.to_controller.send(now + self.delay, line);
    }

    /// Lines deliverable to the agent at `now`.
    pub fn recv_at_agent(&mut self, now: SimTime) -> Vec<String> {
        self.to_agent.recv(now)
    }

    /// Lines deliverable to the controller at `now`.
    pub fn recv_at_controller(&mut self, now: SimTime) -> Vec<String> {
        self.to_controller.recv(now)
    }

    /// Total messages dropped in both directions.
    pub fn dropped(&self) -> u64 {
        self.to_agent.dropped + self.to_controller.dropped
    }

    /// Earliest pending delivery time toward the controller, if any.
    pub fn next_delivery_to_controller(&self) -> Option<SimTime> {
        self.to_controller.queue.iter().map(|(at, _)| *at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_delay_in_order() {
        let mut d = Duplex::new(SimDuration::from_millis(10));
        d.send_to_agent(SimTime::ZERO, "a".into());
        d.send_to_agent(SimTime::ZERO, "b".into());
        assert!(d.recv_at_agent(SimTime::from_millis(5)).is_empty());
        let got = d.recv_at_agent(SimTime::from_millis(10));
        assert_eq!(got, vec!["a".to_string(), "b".to_string()]);
        // Already drained.
        assert!(d.recv_at_agent(SimTime::from_millis(20)).is_empty());
    }

    #[test]
    fn directions_are_independent() {
        let mut d = Duplex::new(SimDuration::ZERO);
        d.send_to_agent(SimTime::ZERO, "down".into());
        d.send_to_controller(SimTime::ZERO, "up".into());
        assert_eq!(d.recv_at_controller(SimTime::ZERO), vec!["up".to_string()]);
        assert_eq!(d.recv_at_agent(SimTime::ZERO), vec!["down".to_string()]);
    }

    #[test]
    fn drop_every_is_deterministic() {
        let mut d = Duplex::new(SimDuration::ZERO).with_drop_every(3);
        for i in 0..9 {
            d.send_to_agent(SimTime::ZERO, format!("m{i}"));
        }
        let got = d.recv_at_agent(SimTime::ZERO);
        assert_eq!(got.len(), 6);
        assert_eq!(d.dropped(), 3);
        // Messages 2, 5, 8 (every third) were dropped.
        assert!(!got.contains(&"m2".to_string()));
        assert!(!got.contains(&"m5".to_string()));
        assert!(!got.contains(&"m8".to_string()));
    }
}
