//! Synchronous MPI: the paper's canonical *inelastic legacy* application
//! (§1: "applications without built-in fault-tolerance support, legacy
//! applications that are not disruption-tolerant, and inelastic
//! applications that require a fixed set of servers such as MPI … are
//! challenging to run on preemptible servers \[but\] can all seamlessly
//! run on deflatable transient resources").
//!
//! The model is a bulk-synchronous stencil code: one rank per vCPU, a
//! barrier every iteration, no checkpointing. Its deflation policy is
//! the paper's default for inelastic applications — *ignore the request*
//! (the [`InelasticAgent`]) and let the OS and hypervisor reclaim.
//!
//! The decisive comparison is expected completion time:
//!
//! * on **deflatable** VMs the job always finishes, slowed by the
//!   barrier-gated compute of the most-deflated rank;
//! * on **preemptible** VMs every revocation restarts the job from
//!   scratch, so with Poisson revocations of rate `λ` the expected
//!   running time is the classic `E[T] = (e^{λT₀} − 1)/λ` — which grows
//!   *exponentially* in `T₀/MTTF` and diverges for jobs longer than a
//!   few failure periods.
//!
//! [`InelasticAgent`]: deflate_core::layers::InelasticAgent

use deflate_core::ResourceKind;
use hypervisor::guest::SharedVmState;
use hypervisor::VmResourceView;
use simkit::SimDuration;

use crate::utility::lhp_penalty;

/// Configuration of the MPI job.
#[derive(Debug, Clone, Copy)]
pub struct MpiParams {
    /// Undeflated wall-clock running time.
    pub base_runtime: SimDuration,
    /// Fraction of an iteration spent computing (the rest is halo
    /// exchange + barrier); stencil codes are compute-bound.
    pub compute_frac: f64,
    /// Resident set per VM (MiB).
    pub memory_mb: f64,
    /// Ranks per VM = vCPUs the job pins.
    pub ranks_per_vm: u32,
}

impl Default for MpiParams {
    fn default() -> Self {
        MpiParams {
            base_runtime: SimDuration::from_hours(6),
            compute_frac: 0.85,
            memory_mb: 10_240.0,
            ranks_per_vm: 4,
        }
    }
}

/// The MPI application model (inelastic; no deflation agent).
pub struct MpiApp {
    params: MpiParams,
}

impl MpiApp {
    /// Creates the job.
    pub fn new(params: MpiParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.compute_frac),
            "compute fraction must lie in [0, 1]"
        );
        MpiApp { params }
    }

    /// The configuration.
    pub fn params(&self) -> &MpiParams {
        &self.params
    }

    /// Sets the VM's application usage (ranks pin every vCPU).
    pub fn init_usage(&self, vm_state: &SharedVmState) {
        let mut st = vm_state.borrow_mut();
        st.usage.memory_mb = self.params.memory_mb;
        st.usage.busy_vcpus = f64::from(self.params.ranks_per_vm);
        st.recompute_swap();
    }

    /// Per-iteration slowdown for the worst (most deflated) VM view in
    /// the job: the barrier makes everyone wait for it.
    pub fn slowdown(&self, worst: &VmResourceView) -> f64 {
        if worst.oom {
            return f64::INFINITY;
        }
        let p = &self.params;
        let cpu_frac =
            (worst.effective.get(ResourceKind::Cpu) / f64::from(p.ranks_per_vm)).clamp(1e-3, 1.0);
        let lhp = lhp_penalty(worst.cpu_overcommit_ratio);
        // Swapped pages stall the stencil sweep badly. Guard the ratio
        // against a zero resident set (would be NaN).
        let swapped_frac = if p.memory_mb > 0.0 {
            (worst.swapped_mb / p.memory_mb).clamp(0.0, 1.0)
        } else if worst.swapped_mb > 0.0 {
            1.0
        } else {
            0.0
        };
        let swap = 1.0 + 6.0 * swapped_frac;
        (1.0 - p.compute_frac) + p.compute_frac * lhp * swap / cpu_frac
    }

    /// Working-set floor hint for distress-aware deflation: the stencil's
    /// resident set (MiB) — an inelastic job cannot shrink it at all.
    pub fn distress_floor_mb(&self) -> f64 {
        self.params.memory_mb
    }

    /// Wall-clock running time on deflatable VMs: the job survives and
    /// runs at the deflated rate (deflation applied for the whole run —
    /// the conservative case).
    pub fn runtime_deflated(&self, worst: &VmResourceView) -> SimDuration {
        let s = self.slowdown(worst);
        if s.is_finite() {
            self.params.base_runtime.mul_f64(s)
        } else {
            SimDuration::from_hours(24 * 365)
        }
    }

    /// Expected wall-clock running time on *preemptible* VMs with
    /// exponentially-distributed revocations (mean time to failure
    /// `mttf`) and restart-from-scratch (no checkpointing):
    /// `E[T] = (e^{T₀/mttf} − 1)·mttf`.
    pub fn expected_runtime_preemptible(&self, mttf: SimDuration) -> SimDuration {
        let t0 = self.params.base_runtime.as_secs_f64();
        let m = mttf.as_secs_f64();
        assert!(m > 0.0, "MTTF must be positive");
        let e = ((t0 / m).exp() - 1.0) * m;
        SimDuration::from_secs_f64(e.min(3600.0 * 24.0 * 365.0 * 100.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflate_core::{CascadeConfig, ResourceVector, VmId};
    use hypervisor::{Vm, VmPriority};
    use simkit::SimTime;

    fn vm_spec() -> ResourceVector {
        ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0)
    }

    fn setup() -> (MpiApp, Vm) {
        let app = MpiApp::new(MpiParams::default());
        let vm = Vm::new(VmId(1), vm_spec(), VmPriority::Low);
        app.init_usage(&vm.state());
        (app, vm)
    }

    #[test]
    fn baseline_runtime() {
        let (app, vm) = setup();
        assert!((app.slowdown(&vm.view()) - 1.0).abs() < 1e-9);
        assert_eq!(app.runtime_deflated(&vm.view()), SimDuration::from_hours(6));
    }

    #[test]
    fn deflation_slows_but_never_kills() {
        let (app, mut vm) = setup();
        let _ = vm.deflate(
            SimTime::ZERO,
            &vm_spec().scale(0.5),
            &CascadeConfig::VM_LEVEL,
        );
        let t = app.runtime_deflated(&vm.view());
        assert!(t > SimDuration::from_hours(6));
        assert!(t < SimDuration::from_hours(24), "bounded slowdown: {t}");
    }

    #[test]
    fn preemptible_runtime_explodes_for_long_jobs() {
        let (app, mut vm) = setup();
        // Google preemptible VMs: MTTF < 24 h. A 6-hour job survives-ish.
        let day = app.expected_runtime_preemptible(SimDuration::from_hours(24));
        assert!(day > SimDuration::from_hours(6));
        // Busy periods: MTTF of 3 h → e²−1 ≈ 6.4 failure periods ≈ 19 h.
        let busy = app.expected_runtime_preemptible(SimDuration::from_hours(3));
        assert!(busy > SimDuration::from_hours(18), "busy {busy}");
        // A 50 %-CPU-deflated run is far cheaper than restarting through
        // 3-hour revocations (memory is left alone — the cluster manager
        // reclaims CPU from compute-bound jobs first).
        let _ = vm.deflate(
            SimTime::ZERO,
            &ResourceVector::cpu(2.0),
            &CascadeConfig::VM_LEVEL,
        );
        let deflated = app.runtime_deflated(&vm.view());
        assert!(deflated < busy, "deflated {deflated} vs preemptible {busy}");
    }

    #[test]
    fn hypervisor_only_cpu_deflation_pays_lhp() {
        let (app, mut vm_hv) = setup();
        let _ = vm_hv.deflate(
            SimTime::ZERO,
            &ResourceVector::cpu(2.0),
            &CascadeConfig::HYPERVISOR_ONLY,
        );
        let (app2, mut vm_os) = setup();
        let _ = vm_os.deflate(
            SimTime::ZERO,
            &ResourceVector::cpu(2.0),
            &CascadeConfig::OS_ONLY,
        );
        // Spinlock-heavy MPI suffers more under vCPU multiplexing.
        assert!(app.slowdown(&vm_hv.view()) > app2.slowdown(&vm_os.view()));
    }

    #[test]
    fn zero_resident_set_is_never_nan() {
        let app = MpiApp::new(MpiParams {
            memory_mb: 0.0,
            ..MpiParams::default()
        });
        let vm = Vm::new(VmId(1), vm_spec(), VmPriority::Low);
        vm.state().borrow_mut().usage.memory_mb = 2_000.0;
        vm.state().borrow_mut().overcommitted = ResourceVector::memory(15_000.0);
        vm.state().borrow_mut().recompute_swap();
        let s = app.slowdown(&vm.view());
        assert!(!s.is_nan());
        assert!(s >= 1.0);
    }

    #[test]
    fn oom_is_fatal() {
        let (app, vm) = setup();
        vm.state().borrow_mut().unplugged = ResourceVector::memory(10_000.0);
        assert!(app.slowdown(&vm.view()).is_infinite());
    }
}
