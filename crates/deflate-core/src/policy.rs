//! Cluster-side deflation policies (paper §5, "How much to deflate VMs
//! by?").
//!
//! When a new VM must be placed on a server with insufficient free
//! resources, the cluster manager deflates *all* low-priority VMs on that
//! server proportionally to their remaining deflatable range
//! (`current − min`). Minimum sizes are optional (default 0) and mark the
//! point past which a VM is preempted rather than deflated further.

use crate::ids::VmId;
use crate::resources::{ResourceKind, ResourceVector};

/// Per-VM state the proportional policy needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmDeflationState {
    /// The VM.
    pub id: VmId,
    /// Its current (possibly already deflated) allocation.
    pub current: ResourceVector,
    /// Its minimum size `m_i`; deflation below this is not feasible/safe
    /// and the VM must be preempted instead. Defaults to zero.
    pub min: ResourceVector,
}

impl VmDeflationState {
    /// Creates state with a zero minimum (the paper's default).
    pub fn new(id: VmId, current: ResourceVector) -> Self {
        VmDeflationState {
            id,
            current,
            min: ResourceVector::ZERO,
        }
    }

    /// Creates state with an explicit minimum size.
    pub fn with_min(id: VmId, current: ResourceVector, min: ResourceVector) -> Self {
        VmDeflationState { id, current, min }
    }

    /// How much this VM can still give up.
    pub fn deflatable(&self) -> ResourceVector {
        self.current.saturating_sub(&self.min)
    }
}

/// The output of the proportional policy: per-VM deflation targets plus
/// how much of the demand they cover.
#[derive(Debug, Clone, PartialEq)]
pub struct DeflationPlan {
    /// Target reclamation vector per VM, in input order.
    pub targets: Vec<(VmId, ResourceVector)>,
    /// Σ targets — the demand that deflation can satisfy.
    pub satisfied: ResourceVector,
    /// Demand that deflation *cannot* satisfy (all VMs at minimum);
    /// non-zero means preemption is needed.
    pub shortfall: ResourceVector,
}

impl DeflationPlan {
    /// Returns `true` when deflation alone covers the demand.
    pub fn feasible(&self) -> bool {
        self.shortfall.is_zero()
    }
}

/// Computes proportional deflation targets `x_i` with `Σ x_i = demand`
/// (per resource dimension), each `x_i` proportional to the VM's remaining
/// deflatable range and capped by it.
///
/// When the aggregate deflatable pool cannot cover the demand in some
/// dimension, every VM is assigned its full deflatable amount there and
/// the remainder is reported as [`DeflationPlan::shortfall`].
pub fn proportional_targets(demand: &ResourceVector, vms: &[VmDeflationState]) -> DeflationPlan {
    let mut targets: Vec<(VmId, ResourceVector)> =
        vms.iter().map(|vm| (vm.id, ResourceVector::ZERO)).collect();
    let mut satisfied = ResourceVector::ZERO;
    let mut shortfall = ResourceVector::ZERO;

    for kind in ResourceKind::ALL {
        let d = demand.get(kind);
        if d <= 0.0 {
            continue;
        }
        let deflatable: Vec<f64> = vms.iter().map(|vm| vm.deflatable().get(kind)).collect();
        let pool: f64 = deflatable.iter().sum();
        if pool <= 0.0 {
            shortfall.set(kind, d);
            continue;
        }
        // β = fraction of each VM's deflatable range to take, ≤ 1.
        let beta = (d / pool).min(1.0);
        let mut got = 0.0;
        for (i, amt) in deflatable.iter().enumerate() {
            let x = amt * beta;
            if x > 0.0 {
                let cur = targets[i].1.get(kind);
                targets[i].1.set(kind, cur + x);
            }
            got += x;
        }
        satisfied.set(kind, got.min(d));
        if got + 1e-9 < d {
            shortfall.set(kind, d - got);
        }
    }

    DeflationPlan {
        targets,
        satisfied,
        shortfall,
    }
}

/// Computes proportional *reinflation* amounts when `freed` resources
/// become available on a server: each deflated VM gets back a share
/// proportional to its deficit (`spec − current`), capped by that deficit.
///
/// This mirrors the paper's "Just as with deflation, we reinflate VMs
/// proportionally."
pub fn proportional_reinflation(
    freed: &ResourceVector,
    vms: &[(VmId, ResourceVector, ResourceVector)], // (id, current, spec)
) -> Vec<(VmId, ResourceVector)> {
    let mut out: Vec<(VmId, ResourceVector)> = vms
        .iter()
        .map(|(id, _, _)| (*id, ResourceVector::ZERO))
        .collect();
    for kind in ResourceKind::ALL {
        let f = freed.get(kind);
        if f <= 0.0 {
            continue;
        }
        let deficits: Vec<f64> = vms
            .iter()
            .map(|(_, cur, spec)| (spec.get(kind) - cur.get(kind)).max(0.0))
            .collect();
        let pool: f64 = deficits.iter().sum();
        if pool <= 0.0 {
            continue;
        }
        let beta = (f / pool).min(1.0);
        for (i, deficit) in deficits.iter().enumerate() {
            let x = deficit * beta;
            if x > 0.0 {
                let cur = out[i].1.get(kind);
                out[i].1.set(kind, cur + x);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(id: u64, cur: ResourceVector) -> VmDeflationState {
        VmDeflationState::new(VmId(id), cur)
    }

    #[test]
    fn splits_proportionally_to_size() {
        // Two VMs, one twice the size of the other; demand 3 CPUs.
        let vms = [
            vm(1, ResourceVector::cpu(4.0)),
            vm(2, ResourceVector::cpu(2.0)),
        ];
        let plan = proportional_targets(&ResourceVector::cpu(3.0), &vms);
        assert!(plan.feasible());
        assert!((plan.targets[0].1.get(ResourceKind::Cpu) - 2.0).abs() < 1e-9);
        assert!((plan.targets[1].1.get(ResourceKind::Cpu) - 1.0).abs() < 1e-9);
        assert!(plan.satisfied.approx_eq(&ResourceVector::cpu(3.0), 1e-9));
    }

    #[test]
    fn respects_minimum_sizes() {
        let vms = [
            VmDeflationState::with_min(
                VmId(1),
                ResourceVector::cpu(4.0),
                ResourceVector::cpu(3.0), // Only 1 CPU deflatable.
            ),
            vm(2, ResourceVector::cpu(4.0)),
        ];
        let plan = proportional_targets(&ResourceVector::cpu(5.0), &vms);
        assert!(plan.feasible());
        let x1 = plan.targets[0].1.get(ResourceKind::Cpu);
        let x2 = plan.targets[1].1.get(ResourceKind::Cpu);
        assert!(x1 <= 1.0 + 1e-9, "x1={x1} exceeds deflatable range");
        assert!((x1 + x2 - 5.0).abs() < 1e-9);
        // Proportional to deflatable ranges 1.0 and 4.0.
        assert!((x1 - 1.0).abs() < 1e-9);
        assert!((x2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn reports_shortfall_when_infeasible() {
        let vms = [vm(1, ResourceVector::cpu(2.0))];
        let plan = proportional_targets(&ResourceVector::cpu(5.0), &vms);
        assert!(!plan.feasible());
        assert!((plan.shortfall.get(ResourceKind::Cpu) - 3.0).abs() < 1e-9);
        assert!((plan.targets[0].1.get(ResourceKind::Cpu) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_vm_set_is_pure_shortfall() {
        let plan = proportional_targets(&ResourceVector::cpu(1.0), &[]);
        assert!(!plan.feasible());
        assert_eq!(plan.shortfall, ResourceVector::cpu(1.0));
        assert!(plan.targets.is_empty());
    }

    #[test]
    fn multi_dimensional_demand() {
        let demand = ResourceVector::new(2.0, 4_096.0, 0.0, 0.0);
        let vms = [
            vm(1, ResourceVector::new(4.0, 8_192.0, 100.0, 100.0)),
            vm(2, ResourceVector::new(4.0, 8_192.0, 100.0, 100.0)),
        ];
        let plan = proportional_targets(&demand, &vms);
        assert!(plan.feasible());
        for (_, t) in &plan.targets {
            assert!((t.get(ResourceKind::Cpu) - 1.0).abs() < 1e-9);
            assert!((t.get(ResourceKind::Memory) - 2_048.0).abs() < 1e-9);
            assert_eq!(t.get(ResourceKind::DiskBw), 0.0);
        }
    }

    #[test]
    fn zero_demand_means_zero_targets() {
        let vms = [vm(1, ResourceVector::cpu(4.0))];
        let plan = proportional_targets(&ResourceVector::ZERO, &vms);
        assert!(plan.feasible());
        assert!(plan.targets[0].1.is_zero());
        assert!(plan.satisfied.is_zero());
    }

    #[test]
    fn reinflation_proportional_to_deficit() {
        let spec = ResourceVector::cpu(4.0);
        let vms = [
            (VmId(1), ResourceVector::cpu(2.0), spec), // Deficit 2.
            (VmId(2), ResourceVector::cpu(3.0), spec), // Deficit 1.
        ];
        let shares = proportional_reinflation(&ResourceVector::cpu(1.5), &vms);
        assert!((shares[0].1.get(ResourceKind::Cpu) - 1.0).abs() < 1e-9);
        assert!((shares[1].1.get(ResourceKind::Cpu) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reinflation_capped_by_deficit() {
        let spec = ResourceVector::cpu(4.0);
        let vms = [(VmId(1), ResourceVector::cpu(3.0), spec)]; // Deficit 1.
        let shares = proportional_reinflation(&ResourceVector::cpu(10.0), &vms);
        assert!((shares[0].1.get(ResourceKind::Cpu) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reinflation_ignores_undeflated_vms() {
        let spec = ResourceVector::cpu(4.0);
        let vms = [(VmId(1), spec, spec)];
        let shares = proportional_reinflation(&ResourceVector::cpu(2.0), &vms);
        assert!(shares[0].1.is_zero());
    }
}
