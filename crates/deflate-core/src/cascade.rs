//! The cascade deflation controller (paper §3.2, Fig. 3) and the reverse
//! cascade used for reinflation (§5).
//!
//! Reclamation starts at the highest layer (the application) and cascades
//! down to the guest OS and the hypervisor; each layer is best-effort and
//! whatever it fails to reclaim *falls through* to the next layer. The
//! hypervisor is the layer of last resort and reclaims any remainder
//! through overcommitment.
//!
//! The controller is deliberately mechanism-agnostic: it only talks to the
//! three layer traits from [`crate::layers`], so the same control flow
//! drives the simulated substrate in this workspace and could drive a
//! libvirt-backed implementation unchanged.

use simkit::{SimDuration, SimTime, Span};

use crate::layers::{ApplicationAgent, GuestOs, HypervisorControl};
use crate::resources::{ResourceKind, ResourceVector};

/// How a layer that falls short of its request is retried.
///
/// A layer's first call always runs; while it has reclaimed less than it
/// was asked for and attempts remain, the cascade waits `backoff` (then
/// `backoff × multiplier`, then `backoff × multiplier²`, …) and asks the
/// layer again for the *remainder*. Waits and retries are charged against
/// the cascade deadline: a retry whose backoff would not fit the
/// remaining budget is skipped and the shortfall falls through to the
/// next layer, exactly like a timeout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per layer (first try included). 1 = no retries.
    pub max_attempts: u32,
    /// Wait before the first retry.
    pub backoff: SimDuration,
    /// Growth factor applied to the wait between successive retries.
    pub multiplier: f64,
    /// Backoff jitter fraction in `[0, 1]`: each wait is scaled by a
    /// deterministic factor in `[1 − jitter, 1 + jitter]`, hashed from
    /// `(jitter_seed, entity, attempt)` — so a fleet of VMs retrying the
    /// same failure desynchronizes instead of stampeding in lockstep.
    /// `0.0` (the default) disables jitter entirely: no hash is drawn
    /// and the wait sequence is byte-identical to the pre-jitter policy.
    pub jitter: f64,
    /// Seed for the jitter hash.
    pub jitter_seed: u64,
    /// Identity of the retrying entity (e.g. the VM id), so co-located
    /// retriers draw different factors from the same seed.
    pub entity: u64,
}

/// Domain salt for backoff-jitter draws ("retry_ji").
const SALT_RETRY_JITTER: u64 = 0x7265_7472_795f_6a69;

impl RetryPolicy {
    /// No retries: each layer is asked exactly once (the pre-fault-model
    /// behaviour; the default everywhere).
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        backoff: SimDuration::ZERO,
        multiplier: 2.0,
        jitter: 0.0,
        jitter_seed: 0,
        entity: 0,
    };

    /// `n` total attempts with the given initial backoff, doubling.
    pub const fn attempts(n: u32, backoff: SimDuration) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n,
            backoff,
            multiplier: 2.0,
            jitter: 0.0,
            jitter_seed: 0,
            entity: 0,
        }
    }

    /// Enables deterministic backoff jitter: waits scale by a factor in
    /// `[1 − frac, 1 + frac]` hashed from `(seed, entity, attempt)`.
    pub const fn with_jitter(mut self, frac: f64, seed: u64) -> RetryPolicy {
        self.jitter = frac;
        self.jitter_seed = seed;
        self
    }

    /// Stamps the retrying entity's identity (e.g. the VM id) so its
    /// jitter draws are independent of every other retrier's.
    pub const fn for_entity(mut self, entity: u64) -> RetryPolicy {
        self.entity = entity;
        self
    }

    /// The wait before the retry following `completed` attempts:
    /// `backoff × multiplier^(completed − 1)`, jitter-scaled when
    /// enabled. With `jitter == 0` no hash is drawn and the result is
    /// exactly the un-jittered wait.
    fn wait_after(&self, completed: u32) -> SimDuration {
        let base = self
            .backoff
            .mul_f64(self.multiplier.powi(completed.saturating_sub(1) as i32));
        if self.jitter <= 0.0 {
            return base;
        }
        let bits = simkit::fault::decide(
            self.jitter_seed,
            SALT_RETRY_JITTER,
            self.entity,
            completed as u64,
        );
        // 53 uniform bits → u in [0, 1) → factor in [1 − j, 1 + j).
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 + self.jitter.min(1.0) * (2.0 * u - 1.0);
        base.mul_f64(factor.max(0.0))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::NONE
    }
}

/// Which layers participate in a deflation, and the optional deadline.
///
/// The paper evaluates hypervisor-only, OS-only, hypervisor+OS, and the
/// full three-layer cascade (Fig. 5); the two booleans select among them.
#[derive(Debug, Clone, Copy)]
pub struct CascadeConfig {
    /// Ask the application agent to self-deflate first.
    pub use_app: bool,
    /// Use guest-OS hot-unplug.
    pub use_os: bool,
    /// Fall through to hypervisor overcommitment for the remainder.
    pub use_hypervisor: bool,
    /// Overall deadline; when a layer would exceed it, the cascade skips
    /// ahead (paper §5: "If a deflation operation times out, we proceed to
    /// the next level").
    pub deadline: Option<SimDuration>,
    /// Per-layer retry with exponential backoff under the remaining
    /// deadline budget.
    pub retry: RetryPolicy,
    /// Honor each VM's working-set floor: policy-driven deflation refuses
    /// to cut memory below the application's reported minimum footprint
    /// (`Vm::memory_floor_mb` in the `hypervisor` crate). Off by default —
    /// the floor only binds where a distress-aware control loop sets it.
    pub working_set_floor: bool,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig::FULL
    }
}

impl CascadeConfig {
    /// The full three-layer cascade.
    pub const FULL: CascadeConfig = CascadeConfig {
        use_app: true,
        use_os: true,
        use_hypervisor: true,
        deadline: None,
        retry: RetryPolicy::NONE,
        working_set_floor: false,
    };

    /// Hypervisor-level overcommitment only (black-box VM overcommitment,
    /// what VM-level cluster managers do today).
    pub const HYPERVISOR_ONLY: CascadeConfig = CascadeConfig {
        use_app: false,
        use_os: false,
        use_hypervisor: true,
        deadline: None,
        retry: RetryPolicy::NONE,
        working_set_floor: false,
    };

    /// Guest-OS hot-unplug only (no fall-through; may miss the target).
    pub const OS_ONLY: CascadeConfig = CascadeConfig {
        use_app: false,
        use_os: true,
        use_hypervisor: false,
        deadline: None,
        retry: RetryPolicy::NONE,
        working_set_floor: false,
    };

    /// Hypervisor + OS ("VM-level deflation" in the paper's terminology,
    /// i.e. the cascade without application participation).
    pub const VM_LEVEL: CascadeConfig = CascadeConfig {
        use_app: false,
        use_os: true,
        use_hypervisor: true,
        deadline: None,
        retry: RetryPolicy::NONE,
        working_set_floor: false,
    };

    /// Returns this configuration with a deadline attached.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns this configuration with a retry policy attached.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns this configuration with working-set floors honored.
    pub fn with_working_set_floor(mut self, on: bool) -> Self {
        self.working_set_floor = on;
        self
    }
}

/// What one layer contributed to a cascade.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerReport {
    /// What the cascade asked this layer for.
    pub requested: ResourceVector,
    /// What the layer reclaimed.
    pub reclaimed: ResourceVector,
    /// Time the layer's mechanism took (including retry backoff waits).
    pub latency: SimDuration,
    /// How many times the layer was asked (0 = never engaged, 1 = no
    /// retries).
    pub attempts: u32,
}

/// The result of one cascade deflation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[must_use = "a CascadeOutcome carries the reclaimed amount the caller must account for"]
pub struct CascadeOutcome {
    /// Application-layer contribution (voluntarily relinquished).
    pub app: LayerReport,
    /// Guest-OS layer contribution (hot-unplugged).
    pub os: LayerReport,
    /// Hypervisor layer contribution (overcommitted).
    pub hypervisor: LayerReport,
    /// Total resources reclaimed and returned to the server.
    pub total_reclaimed: ResourceVector,
    /// End-to-end latency (layers run sequentially, as in the paper's
    /// per-VM controller; cross-VM deflations are concurrent).
    pub latency: SimDuration,
    /// Target minus total reclaimed (zero when the target was met).
    pub shortfall: ResourceVector,
    /// Total retries across layers (Σ per-layer `attempts − 1`).
    pub retries: u32,
    /// Upper layers (app, OS) that engaged but still fell short of their
    /// request after all retries, forcing the cascade to escalate to a
    /// lower layer.
    pub escalations: u32,
}

/// Appends one attribute per resource kind: `<prefix>.cpu`,
/// `<prefix>.memory`, ...
fn vector_attrs(mut span: Span, prefix: &str, v: &ResourceVector) -> Span {
    for kind in ResourceKind::ALL {
        span = span.with_attr(&format!("{prefix}.{}", kind.name()), v.get(kind));
    }
    span
}

impl LayerReport {
    /// Whether the layer was engaged at all (asked for something, gave
    /// something, or spent time trying).
    pub fn engaged(&self) -> bool {
        !self.requested.is_zero() || !self.reclaimed.is_zero() || !self.latency.is_zero()
    }

    /// Builds the per-layer child span (`cascade.layer`) carrying this
    /// report's requested/reclaimed/latency payload.
    pub fn to_span(&self, layer: &str, at: SimTime) -> Span {
        let span = Span::new("cascade.layer", at)
            .with_duration(self.latency)
            .with_attr("layer", layer)
            .with_attr("attempts", u64::from(self.attempts));
        let span = vector_attrs(span, "requested", &self.requested);
        vector_attrs(span, "reclaimed", &self.reclaimed)
    }
}

impl CascadeOutcome {
    /// Returns `true` when the full target was reclaimed.
    pub fn met_target(&self) -> bool {
        self.shortfall.is_zero()
    }

    /// Builds a structured `cascade.deflate` trace span for this outcome,
    /// with one `cascade.layer` child per engaged layer. `at` is when the
    /// cascade started; callers attach context (VM id, server) with
    /// [`Span::with_attr`].
    pub fn to_span(&self, at: SimTime) -> Span {
        let mut span = Span::new("cascade.deflate", at)
            .with_duration(self.latency)
            .with_attr("met_target", self.met_target())
            .with_attr("retries", u64::from(self.retries))
            .with_attr("escalations", u64::from(self.escalations));
        span = vector_attrs(span, "total_reclaimed", &self.total_reclaimed);
        span = vector_attrs(span, "shortfall", &self.shortfall);
        let mut t = at;
        for (name, report) in [
            ("app", &self.app),
            ("os", &self.os),
            ("hypervisor", &self.hypervisor),
        ] {
            if report.engaged() {
                span = span.with_child(report.to_span(name, t));
            }
            t = t.saturating_add(report.latency);
        }
        span
    }
}

fn remaining_budget(deadline: Option<SimDuration>, spent: SimDuration) -> Option<SimDuration> {
    deadline.map(|d| d.saturating_since_zero(spent))
}

/// Retries a layer that fell short of `requested` until it converges, the
/// attempt budget runs out, or the next backoff would blow the remaining
/// deadline. Each retry asks only for the remainder; backoff waits count
/// toward both the layer's latency and the cascade's spent time.
fn run_retries(
    now: SimTime,
    requested: &ResourceVector,
    report: &mut LayerReport,
    spent: &mut SimDuration,
    deadline: Option<SimDuration>,
    retry: &RetryPolicy,
    attempt: &mut dyn FnMut(
        SimTime,
        &ResourceVector,
        Option<SimDuration>,
    ) -> crate::layers::ReclaimResult,
) {
    loop {
        let remainder = requested.saturating_sub(&report.reclaimed);
        if remainder.is_zero() || report.attempts >= retry.max_attempts {
            return;
        }
        let wait = retry.wait_after(report.attempts);
        if let Some(d) = deadline {
            // A retry only runs if the backoff leaves budget to act in.
            if *spent + wait >= d {
                return;
            }
        }
        *spent += wait;
        report.latency += wait;
        let budget = remaining_budget(deadline, *spent);
        let res = attempt(now.saturating_add(*spent), &remainder, budget);
        report.attempts += 1;
        report.latency += res.latency;
        *spent += res.latency;
        report.reclaimed += res.reclaimed.min(&remainder);
    }
}

// Small extension trait to keep the budget arithmetic readable.
trait SaturatingSince {
    fn saturating_since_zero(self, spent: SimDuration) -> SimDuration;
}

impl SaturatingSince for SimDuration {
    fn saturating_since_zero(self, spent: SimDuration) -> SimDuration {
        if spent >= self {
            SimDuration::ZERO
        } else {
            self - spent
        }
    }
}

/// Runs cascade deflation against one VM (paper Fig. 3).
///
/// `target` is the reclamation vector the cluster manager assigned to this
/// VM. The function drives the three layers in order and returns a
/// [`CascadeOutcome`] describing who reclaimed what and how long it took.
///
/// The guest-OS unplug target follows the pseudo-code exactly:
/// `min(target, max(app_relinquished, unpluggable))` — resources the
/// application just freed are unpluggable even if the OS's own free pool is
/// smaller.
///
/// # Accounting
///
/// The application and guest-OS layers operate on the *same* resource
/// pool: what the application relinquishes becomes unpluggable, and the
/// OS unplugs from it. Their joint contribution is therefore the
/// elementwise `max(app_reclaimed, os_reclaimed)`, never the sum. The
/// hypervisor is asked only for `target - max(app_reclaimed,
/// os_reclaimed)`, and
///
/// ```text
/// total_reclaimed = max(app_reclaimed, os_reclaimed) + hv_reclaimed
/// shortfall       = target - total_reclaimed   (elementwise, >= 0)
/// ```
///
/// so `total_reclaimed <= target` holds elementwise and an application
/// that relinquishes the full target leaves nothing for the hypervisor to
/// overcommit.
///
/// # Examples
///
/// See the crate-level example and the `hypervisor` crate, which provides
/// the substrate implementing the three traits.
pub fn deflate_vm(
    now: SimTime,
    target: &ResourceVector,
    app: Option<&mut dyn ApplicationAgent>,
    os: &mut dyn GuestOs,
    hv: &mut dyn HypervisorControl,
    cfg: &CascadeConfig,
) -> CascadeOutcome {
    let mut outcome = CascadeOutcome::default();
    let mut spent = SimDuration::ZERO;

    // Layer 1: application self-deflation (best-effort, may decline).
    let mut app_r = ResourceVector::ZERO;
    if cfg.use_app {
        if let Some(agent) = app {
            let res = agent.self_deflate(now, target);
            outcome.app = LayerReport {
                requested: *target,
                // An agent cannot relinquish more than asked.
                reclaimed: res.reclaimed.min(target),
                latency: res.latency,
                attempts: 1,
            };
            spent += res.latency;
            run_retries(
                now,
                target,
                &mut outcome.app,
                &mut spent,
                cfg.deadline,
                &cfg.retry,
                &mut |at, remainder, _budget| agent.self_deflate(at, remainder),
            );
            app_r = outcome.app.reclaimed;
        }
    }

    // Layer 2: guest-OS hot-unplug.
    //
    // `unplug_target = min(target, max(app_r, unpluggable))`: the
    // application's relinquished resources are free inside the guest, so
    // they are unpluggable even when the OS free pool alone is smaller.
    let mut unplug_r = ResourceVector::ZERO;
    if cfg.use_os {
        let budget = remaining_budget(cfg.deadline, spent);
        if budget != Some(SimDuration::ZERO) {
            let unplug_target = app_r.max(&os.unpluggable()).min(target);
            if !unplug_target.is_zero() {
                let res = os.try_unplug(now, &unplug_target, budget);
                outcome.os = LayerReport {
                    requested: unplug_target,
                    reclaimed: res.reclaimed.min(&unplug_target),
                    latency: res.latency,
                    attempts: 1,
                };
                spent += res.latency;
                run_retries(
                    now,
                    &unplug_target,
                    &mut outcome.os,
                    &mut spent,
                    cfg.deadline,
                    &cfg.retry,
                    &mut |at, remainder, budget| os.try_unplug(at, remainder, budget),
                );
                unplug_r = outcome.os.reclaimed;
            }
        }
    }

    // What the upper two layers jointly reclaimed. The application frees
    // resources *inside* the guest and the OS then unplugs from that same
    // pool, so the two contributions overlap: the credited amount is the
    // elementwise max, not the sum. (Resources the application freed but
    // the OS could not unplug are still idle inside the guest, so
    // overcommitting them is safe and they count as reclaimed.)
    let credited = app_r.max(&unplug_r);

    // Layer 3: hypervisor overcommitment picks up the slack.
    //
    // Only what the upper layers failed to reclaim needs overcommitment;
    // asking for `target - unplug_r` here would double-reclaim whatever
    // the application already relinquished.
    let mut hv_r = ResourceVector::ZERO;
    if cfg.use_hypervisor {
        let remainder = target.saturating_sub(&credited);
        if !remainder.is_zero() {
            let budget = remaining_budget(cfg.deadline, spent);
            let res = hv.overcommit(now, &remainder, budget);
            outcome.hypervisor = LayerReport {
                requested: remainder,
                reclaimed: res.reclaimed.min(&remainder),
                latency: res.latency,
                attempts: 1,
            };
            spent += res.latency;
            run_retries(
                now,
                &remainder,
                &mut outcome.hypervisor,
                &mut spent,
                cfg.deadline,
                &cfg.retry,
                &mut |at, rem, budget| hv.overcommit(at, rem, budget),
            );
            hv_r = outcome.hypervisor.reclaimed;
        }
    }

    outcome.total_reclaimed = credited + hv_r;
    outcome.latency = spent;
    outcome.shortfall = target.saturating_sub(&outcome.total_reclaimed);
    outcome.retries = outcome.app.attempts.saturating_sub(1)
        + outcome.os.attempts.saturating_sub(1)
        + outcome.hypervisor.attempts.saturating_sub(1);
    // An upper layer that engaged and still fell short of its own request
    // pushed work down the cascade.
    for r in [outcome.app, outcome.os] {
        if r.engaged() && !r.reclaimed.dominates(&r.requested) {
            outcome.escalations += 1;
        }
    }
    outcome
}

/// The reverse cascade: returns `amount` of resources to a deflated VM
/// (paper §5, "Cascade deflation can be used 'in reverse'").
///
/// Hypervisor-level overcommitment is released first (cheapest and it
/// un-throttles the VM immediately), the remainder is hot-plugged back into
/// the guest, and finally the application agent is informed of the total so
/// it can re-expand (grow heap, re-admit tasks, ...).
///
/// Returns the amount actually re-inflated, which may be less than
/// requested if the VM was not deflated that far.
pub fn reinflate_vm(
    now: SimTime,
    amount: &ResourceVector,
    app: Option<&mut dyn ApplicationAgent>,
    os: &mut dyn GuestOs,
    hv: &mut dyn HypervisorControl,
) -> ResourceVector {
    let released = hv.release(now, amount);
    let remainder = amount.saturating_sub(&released);
    let plugged = if remainder.is_zero() {
        ResourceVector::ZERO
    } else {
        os.hot_plug(now, &remainder)
    };
    let total = released + plugged;
    if !total.is_zero() {
        if let Some(agent) = app {
            agent.reinflate(now, &total);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{InelasticAgent, ReclaimResult};
    use crate::resources::ResourceKind;

    /// A scriptable fake guest OS.
    struct FakeOs {
        free: ResourceVector,
        unplugged: ResourceVector,
        /// Fraction of the unplug request that succeeds (busy-resource model).
        success_fraction: f64,
        latency: SimDuration,
    }

    impl FakeOs {
        fn new(free: ResourceVector) -> Self {
            FakeOs {
                free,
                unplugged: ResourceVector::ZERO,
                success_fraction: 1.0,
                latency: SimDuration::from_secs(1),
            }
        }
    }

    impl GuestOs for FakeOs {
        fn unpluggable(&self) -> ResourceVector {
            self.free
        }

        fn try_unplug(
            &mut self,
            _now: SimTime,
            target: &ResourceVector,
            budget: Option<SimDuration>,
        ) -> ReclaimResult {
            if budget == Some(SimDuration::ZERO) {
                return ReclaimResult::NOTHING;
            }
            let got = target.scale(self.success_fraction);
            self.unplugged += got;
            self.free = self.free.saturating_sub(&got);
            ReclaimResult::new(got, self.latency)
        }

        fn hot_plug(&mut self, _now: SimTime, amount: &ResourceVector) -> ResourceVector {
            let give = amount.min(&self.unplugged);
            self.unplugged -= give;
            self.free += give;
            give
        }
    }

    /// A fake hypervisor that always reclaims in full.
    struct FakeHv {
        over: ResourceVector,
        latency: SimDuration,
    }

    impl FakeHv {
        fn new() -> Self {
            FakeHv {
                over: ResourceVector::ZERO,
                latency: SimDuration::from_secs(10),
            }
        }
    }

    impl HypervisorControl for FakeHv {
        fn overcommit(
            &mut self,
            _now: SimTime,
            amount: &ResourceVector,
            budget: Option<SimDuration>,
        ) -> ReclaimResult {
            if budget == Some(SimDuration::ZERO) {
                return ReclaimResult::NOTHING;
            }
            self.over += *amount;
            ReclaimResult::new(*amount, self.latency)
        }

        fn release(&mut self, _now: SimTime, amount: &ResourceVector) -> ResourceVector {
            let give = amount.min(&self.over);
            self.over -= give;
            give
        }

        fn overcommitted(&self) -> ResourceVector {
            self.over
        }
    }

    /// An agent that relinquishes a fixed fraction of any request.
    struct FractionAgent(f64);

    impl ApplicationAgent for FractionAgent {
        fn self_deflate(&mut self, _now: SimTime, target: &ResourceVector) -> ReclaimResult {
            ReclaimResult::new(target.scale(self.0), SimDuration::from_millis(100))
        }

        fn reinflate(&mut self, _now: SimTime, _available: &ResourceVector) {}
    }

    fn target() -> ResourceVector {
        ResourceVector::new(2.0, 8_192.0, 50.0, 100.0)
    }

    #[test]
    fn full_cascade_meets_target() {
        let mut os = FakeOs::new(ResourceVector::new(1.0, 4_096.0, 50.0, 100.0));
        let mut hv = FakeHv::new();
        let mut agent = FractionAgent(0.5);
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            Some(&mut agent),
            &mut os,
            &mut hv,
            &CascadeConfig::FULL,
        );
        assert!(out.met_target(), "shortfall: {}", out.shortfall);
        assert!(out.total_reclaimed.approx_eq(&target(), 1e-9));
        // App relinquished half; OS unplugged max(app, free) ∧ target.
        assert_eq!(out.app.reclaimed, target().scale(0.5));
        // OS unplug target: max(half-target, free) elementwise, min target.
        let expected_unplug = target()
            .scale(0.5)
            .max(&ResourceVector::new(1.0, 4_096.0, 50.0, 100.0))
            .min(&target());
        assert!(out.os.reclaimed.approx_eq(&expected_unplug, 1e-9));
        // Hypervisor picked up exactly the slack.
        let slack = target().saturating_sub(&out.os.reclaimed);
        assert!(out.hypervisor.reclaimed.approx_eq(&slack, 1e-9));
        // Latency is the sum of layer latencies.
        assert_eq!(
            out.latency,
            SimDuration::from_millis(100) + SimDuration::from_secs(1) + SimDuration::from_secs(10)
        );
    }

    #[test]
    fn hypervisor_only_reclaims_everything_at_hv() {
        let mut os = FakeOs::new(target());
        let mut hv = FakeHv::new();
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::HYPERVISOR_ONLY,
        );
        assert!(out.met_target());
        assert!(out.os.reclaimed.is_zero());
        assert!(out.hypervisor.reclaimed.approx_eq(&target(), 1e-9));
        assert!(hv.overcommitted().approx_eq(&target(), 1e-9));
    }

    #[test]
    fn os_only_can_fall_short() {
        // Free pool smaller than target and no hypervisor fall-through.
        let free = ResourceVector::new(1.0, 2_048.0, 0.0, 0.0);
        let mut os = FakeOs::new(free);
        let mut hv = FakeHv::new();
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::OS_ONLY,
        );
        assert!(!out.met_target());
        assert!(out.os.reclaimed.approx_eq(&free, 1e-9));
        assert_eq!(out.shortfall.get(ResourceKind::Memory), 8_192.0 - 2_048.0);
        assert!(out.hypervisor.reclaimed.is_zero());
    }

    #[test]
    fn partial_unplug_falls_through() {
        let mut os = FakeOs::new(target());
        os.success_fraction = 0.25; // Busy resources: only 25 % unplugs.
        let mut hv = FakeHv::new();
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::VM_LEVEL,
        );
        assert!(out.met_target());
        assert!(out.os.reclaimed.approx_eq(&target().scale(0.25), 1e-9));
        assert!(out
            .hypervisor
            .reclaimed
            .approx_eq(&target().scale(0.75), 1e-9));
    }

    #[test]
    fn inelastic_agent_pushes_everything_down() {
        let mut os = FakeOs::new(ResourceVector::ZERO); // Nothing free either.
        let mut hv = FakeHv::new();
        let mut agent = InelasticAgent;
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            Some(&mut agent),
            &mut os,
            &mut hv,
            &CascadeConfig::FULL,
        );
        assert!(out.met_target());
        assert!(out.app.reclaimed.is_zero());
        assert!(out.os.reclaimed.is_zero());
        assert!(out.hypervisor.reclaimed.approx_eq(&target(), 1e-9));
    }

    #[test]
    fn deadline_skips_exhausted_layers() {
        let mut os = FakeOs::new(target());
        os.latency = SimDuration::from_secs(5);
        let mut hv = FakeHv::new();
        let mut agent = FractionAgent(0.5);
        // Deadline shorter than the app layer's latency: OS and HV get a
        // zero budget and reclaim nothing, so only the app's half counts.
        let cfg = CascadeConfig::FULL.with_deadline(SimDuration::from_millis(50));
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            Some(&mut agent),
            &mut os,
            &mut hv,
            &cfg,
        );
        assert!(out.os.reclaimed.is_zero());
        assert!(out.hypervisor.reclaimed.is_zero());
        assert!(out.total_reclaimed.approx_eq(&target().scale(0.5), 1e-9));
        assert!(!out.met_target());
    }

    #[test]
    fn full_app_relinquish_means_no_hv_overcommit() {
        // Regression: with the app layer on and the OS layer off, an agent
        // relinquishing the entire target used to be ignored by the
        // accounting — the hypervisor was asked for the full target again
        // (double reclamation) and `total_reclaimed` omitted the app share.
        let cfg = CascadeConfig {
            use_app: true,
            use_os: false,
            use_hypervisor: true,
            deadline: None,
            retry: RetryPolicy::NONE,
            working_set_floor: false,
        };
        let mut os = FakeOs::new(target());
        let mut hv = FakeHv::new();
        let mut agent = FractionAgent(1.0);
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            Some(&mut agent),
            &mut os,
            &mut hv,
            &cfg,
        );
        // Nothing falls through: the hypervisor is never asked.
        assert!(out.hypervisor.requested.is_zero());
        assert!(out.hypervisor.reclaimed.is_zero());
        assert!(hv.overcommitted().is_zero());
        // And the app's contribution is credited in full.
        assert!(out.total_reclaimed.approx_eq(&target(), 1e-9));
        assert!(out.shortfall.is_zero());
        assert!(out.met_target());
    }

    #[test]
    fn agent_cannot_overshoot_target() {
        struct Overeager;
        impl ApplicationAgent for Overeager {
            fn self_deflate(&mut self, _n: SimTime, t: &ResourceVector) -> ReclaimResult {
                ReclaimResult::new(t.scale(10.0), SimDuration::ZERO)
            }
            fn reinflate(&mut self, _n: SimTime, _a: &ResourceVector) {}
        }
        let mut os = FakeOs::new(target());
        let mut hv = FakeHv::new();
        let mut agent = Overeager;
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            Some(&mut agent),
            &mut os,
            &mut hv,
            &CascadeConfig::FULL,
        );
        assert!(out.app.reclaimed.approx_eq(&target(), 1e-9));
        assert!(out.total_reclaimed.approx_eq(&target(), 1e-9));
    }

    #[test]
    fn reinflate_releases_hv_first_then_plugs() {
        let mut os = FakeOs::new(target());
        os.success_fraction = 0.5;
        let mut hv = FakeHv::new();
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::VM_LEVEL,
        );
        assert!(out.met_target());
        let overcommitted_before = hv.overcommitted();
        assert!(!overcommitted_before.is_zero());

        // Reinflate the full target: hypervisor share released, rest plugged.
        let got = reinflate_vm(SimTime::ZERO, &target(), None, &mut os, &mut hv);
        assert!(got.approx_eq(&target(), 1e-9));
        assert!(hv.overcommitted().is_zero());
        assert!(os.unplugged.is_zero());
    }

    #[test]
    fn reinflate_caps_at_deflated_amount() {
        let mut os = FakeOs::new(target());
        let mut hv = FakeHv::new();
        // Deflate only half the target.
        let half = target().scale(0.5);
        let out = deflate_vm(
            SimTime::ZERO,
            &half,
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::VM_LEVEL,
        );
        assert!(out.met_target());
        // Ask for twice as much back; get only the deflated half.
        let got = reinflate_vm(SimTime::ZERO, &target(), None, &mut os, &mut hv);
        assert!(got.approx_eq(&half, 1e-9), "got {got}");
    }

    #[test]
    fn outcome_span_carries_layer_payloads() {
        let mut os = FakeOs::new(ResourceVector::new(1.0, 4_096.0, 50.0, 100.0));
        let mut hv = FakeHv::new();
        let mut agent = FractionAgent(0.5);
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            Some(&mut agent),
            &mut os,
            &mut hv,
            &CascadeConfig::FULL,
        );
        let span = out.to_span(SimTime::from_secs(3)).with_attr("vm", "vm-9");
        assert_eq!(span.kind, "cascade.deflate");
        assert_eq!(span.at, SimTime::from_secs(3));
        assert_eq!(span.duration, out.latency);
        assert_eq!(
            span.attr("met_target").and_then(|v| v.as_bool()),
            Some(true)
        );
        assert_eq!(
            span.attr("total_reclaimed.cpu").and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(span.children.len(), 3);
        let layers: Vec<&str> = span
            .children
            .iter()
            .filter_map(|c| c.attr("layer").and_then(|v| v.as_str()))
            .collect();
        assert_eq!(layers, vec!["app", "os", "hypervisor"]);
        let app = &span.children[0];
        assert_eq!(
            app.attr("requested.cpu").and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(
            app.attr("reclaimed.cpu").and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert_eq!(app.duration, SimDuration::from_millis(100));
        // Children start when their layer ran, sequentially.
        assert_eq!(
            span.children[1].at,
            SimTime::from_secs(3) + SimDuration::from_millis(100)
        );
    }

    #[test]
    fn outcome_span_skips_idle_layers() {
        let mut os = FakeOs::new(target());
        let mut hv = FakeHv::new();
        let out = deflate_vm(
            SimTime::ZERO,
            &target(),
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::HYPERVISOR_ONLY,
        );
        let span = out.to_span(SimTime::ZERO);
        assert_eq!(span.children.len(), 1);
        assert_eq!(
            span.children[0].attr("layer").and_then(|v| v.as_str()),
            Some("hypervisor")
        );
    }

    #[test]
    fn retries_converge_on_flaky_layer() {
        let mut os = FakeOs::new(target());
        os.success_fraction = 0.5; // Every attempt unplugs half the remainder.
        let mut hv = FakeHv::new();
        let cfg = CascadeConfig::OS_ONLY
            .with_retry(RetryPolicy::attempts(3, SimDuration::from_millis(10)));
        let out = deflate_vm(SimTime::ZERO, &target(), None, &mut os, &mut hv, &cfg);
        assert_eq!(out.os.attempts, 3);
        assert_eq!(out.retries, 2);
        // 1/2 + 1/4 + 1/8 of the target across the three attempts.
        assert!(out.total_reclaimed.approx_eq(&target().scale(0.875), 1e-9));
        // Three 1 s unplugs plus the 10 ms and 20 ms backoff waits.
        assert_eq!(
            out.latency,
            SimDuration::from_secs(3) + SimDuration::from_millis(30)
        );
        assert_eq!(out.escalations, 1);
        assert!(!out.met_target());
    }

    #[test]
    fn retry_stops_once_target_met() {
        let mut os = FakeOs::new(target());
        let mut hv = FakeHv::new();
        let cfg =
            CascadeConfig::VM_LEVEL.with_retry(RetryPolicy::attempts(5, SimDuration::from_secs(1)));
        let out = deflate_vm(SimTime::ZERO, &target(), None, &mut os, &mut hv, &cfg);
        // The OS reclaimed everything on the first try: no retries burned.
        assert_eq!(out.os.attempts, 1);
        assert_eq!(out.retries, 0);
        assert_eq!(out.escalations, 0);
        assert!(out.met_target());
    }

    #[test]
    fn retry_backoff_respects_deadline_budget() {
        let mut os = FakeOs::new(target());
        os.success_fraction = 0.5;
        os.latency = SimDuration::from_secs(2);
        let mut hv = FakeHv::new();
        // 3 s deadline: the first unplug spends 2 s, so a 2 s backoff can
        // never fit — the cascade escalates to the hypervisor instead of
        // burning the deadline on retries.
        let cfg = CascadeConfig::VM_LEVEL
            .with_deadline(SimDuration::from_secs(3))
            .with_retry(RetryPolicy::attempts(5, SimDuration::from_secs(2)));
        let out = deflate_vm(SimTime::ZERO, &target(), None, &mut os, &mut hv, &cfg);
        assert_eq!(out.os.attempts, 1, "backoff would blow the deadline");
        assert!(out.met_target(), "hypervisor picks up the slack");
        assert_eq!(out.escalations, 1);
    }

    #[test]
    fn zero_jitter_waits_are_byte_identical() {
        // A zero jitter fraction must not change a single wait, no
        // matter how the seed/entity knobs are set: the jittered policy
        // is strictly opt-in.
        let plain = RetryPolicy::attempts(5, SimDuration::from_millis(100));
        let knobbed = plain.with_jitter(0.0, 99).for_entity(42);
        for completed in 1..6 {
            assert_eq!(plain.wait_after(completed), knobbed.wait_after(completed));
        }
    }

    #[test]
    fn jitter_is_bounded_deterministic_and_per_entity() {
        let base = RetryPolicy::attempts(6, SimDuration::from_millis(100));
        let a = base.with_jitter(0.5, 7).for_entity(3);
        let b = base.with_jitter(0.5, 7).for_entity(4);
        let mut diverged = false;
        for completed in 1..6 {
            let plain = base.wait_after(completed).as_secs_f64();
            let wa = a.wait_after(completed).as_secs_f64();
            // Factor stays inside [1 − j, 1 + j].
            assert!(wa >= plain * 0.5 - 1e-9 && wa <= plain * 1.5 + 1e-9);
            // Same policy, same attempt → same wait.
            assert_eq!(a.wait_after(completed), a.wait_after(completed));
            if a.wait_after(completed) != b.wait_after(completed) {
                diverged = true;
            }
        }
        assert!(diverged, "different entities must draw different factors");
    }

    #[test]
    fn zero_target_is_a_noop() {
        let mut os = FakeOs::new(target());
        let mut hv = FakeHv::new();
        let out = deflate_vm(
            SimTime::ZERO,
            &ResourceVector::ZERO,
            None,
            &mut os,
            &mut hv,
            &CascadeConfig::FULL,
        );
        assert!(out.met_target());
        assert!(out.total_reclaimed.is_zero());
        assert_eq!(out.latency, SimDuration::ZERO);
    }
}
