//! Determinism properties of the cellular sharded simulator.
//!
//! The sharding layer's contract has three legs:
//!
//! 1. `cells = 1` is the monolithic simulator, byte for byte — pinned
//!    against the four committed goldens by `golden_summary.rs` (the
//!    golden configs run with the default `ShardingConfig`, i.e. one
//!    cell) and re-checked here with explicit sharding knobs set.
//! 2. A multi-cell run is a pure function of its configuration: two
//!    executions produce identical results.
//! 3. Worker threads are *execution* configuration only: 1, 2 and 8
//!    threads produce byte-identical merged summaries and numerically
//!    identical results, with and without a chaos fault plan.

use cluster::distress::DistressConfig;
use cluster::manager::ClusterManagerConfig;
use cluster::simulate::{run_cluster_sim, ClusterSimConfig, ClusterSimResult, ShardingConfig};
use cluster::traces::TraceConfig;
use simkit::{FaultPlan, SimDuration};

/// A loaded 40-server fleet: enough pressure that launches deflate,
/// reject and preempt in every cell.
fn loaded_cfg(sharding: ShardingConfig) -> ClusterSimConfig {
    ClusterSimConfig {
        manager: ClusterManagerConfig {
            n_servers: 40,
            ..ClusterManagerConfig::default()
        },
        trace: TraceConfig {
            arrivals_per_hour: 300.0,
            lifetime_median_mins: 120.0,
            ..TraceConfig::default()
        },
        horizon: SimDuration::from_hours(4),
        sharding,
    }
}

fn chaos_cfg(sharding: ShardingConfig) -> ClusterSimConfig {
    let mut cfg = loaded_cfg(sharding);
    cfg.manager.faults = FaultPlan::chaos(7).scaled(2.0);
    cfg
}

/// Everything observable about a run, as one comparable string: the full
/// observability report plus every numeric result field. Two runs with
/// equal fingerprints are the same simulation.
fn fingerprint(r: &ClusterSimResult) -> String {
    format!(
        "{}\nstats={:?}\npp={:?} mu={:?} ou={:?} mo={:?} po={:?}\nso={:?}\nhi={:?} ls={:?} le={:?} ev={}",
        r.summary.to_pretty(),
        r.stats,
        r.preemption_probability,
        r.mean_utilization,
        r.offered_utilization,
        r.mean_overcommitment,
        r.peak_overcommitment,
        r.server_overcommitment,
        r.high_pri_cpu_hours,
        r.low_pri_spec_cpu_hours,
        r.low_pri_effective_cpu_hours,
        r.events,
    )
}

#[test]
fn cells_one_is_byte_identical_to_monolithic() {
    // Explicit sharding knobs (threads, epoch, fanout) must be inert at
    // one cell: the run takes the monolithic path that the goldens pin.
    let mono = run_cluster_sim(&loaded_cfg(ShardingConfig::default()));
    let one = run_cluster_sim(&loaded_cfg(ShardingConfig {
        cells: 1,
        threads: 8,
        epoch: SimDuration::from_secs(17),
        spill_fanout: 5,
    }));
    assert_eq!(fingerprint(&mono), fingerprint(&one));

    let mono = run_cluster_sim(&chaos_cfg(ShardingConfig::default()));
    let one = run_cluster_sim(&chaos_cfg(ShardingConfig::cells(1)));
    assert_eq!(fingerprint(&mono), fingerprint(&one));
}

#[test]
fn sharded_runs_are_deterministic() {
    let cfg = loaded_cfg(ShardingConfig::cells(4));
    let a = run_cluster_sim(&cfg);
    let b = run_cluster_sim(&cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // The merged summary is really the sharded document.
    assert_eq!(
        a.summary.get("cells").and_then(|v| v.as_f64()),
        Some(4.0),
        "merged summary should carry the cell count"
    );
    assert_eq!(
        a.summary
            .get("per_cell")
            .and_then(|v| v.as_array())
            .map(|c| c.len()),
        Some(4),
        "merged summary should carry one report per cell"
    );
}

#[test]
fn thread_count_is_invariant() {
    let base = run_cluster_sim(&loaded_cfg(ShardingConfig {
        cells: 4,
        threads: 1,
        ..ShardingConfig::default()
    }));
    for threads in [2, 8] {
        let r = run_cluster_sim(&loaded_cfg(ShardingConfig {
            cells: 4,
            threads,
            ..ShardingConfig::default()
        }));
        assert_eq!(
            fingerprint(&base),
            fingerprint(&r),
            "threads={threads} diverged from threads=1"
        );
    }
}

#[test]
fn thread_count_is_invariant_under_chaos() {
    // Crashes, partitions and distress all stay inside their cell, so a
    // fault plan must not reintroduce interleaving sensitivity.
    let mut cfg = chaos_cfg(ShardingConfig {
        cells: 4,
        threads: 1,
        ..ShardingConfig::default()
    });
    cfg.manager.server_capacity = deflate_core::ResourceVector::new(16.0, 32_768.0, 400.0, 800.0);
    cfg.manager.distress = DistressConfig::guarded();
    let base = run_cluster_sim(&cfg);
    for threads in [2, 8] {
        cfg.sharding.threads = threads;
        let r = run_cluster_sim(&cfg);
        assert_eq!(
            fingerprint(&base),
            fingerprint(&r),
            "threads={threads} diverged from threads=1 under chaos"
        );
    }
}

#[test]
fn spills_place_in_ring_neighbors_and_stay_deterministic() {
    // Two servers per cell under heavy load: home cells fill at
    // different times, so some arrivals spill to a ring neighbor with
    // room and some are rejected outright. Both tallies must be
    // deterministic and consistent with the home-cell reject counter.
    let cfg = ClusterSimConfig {
        manager: ClusterManagerConfig {
            n_servers: 8,
            ..ClusterManagerConfig::default()
        },
        trace: TraceConfig {
            arrivals_per_hour: 220.0,
            lifetime_median_mins: 180.0,
            ..TraceConfig::default()
        },
        horizon: SimDuration::from_hours(4),
        sharding: ShardingConfig::cells(4),
    };
    let a = run_cluster_sim(&cfg);
    let b = run_cluster_sim(&cfg);
    assert_eq!(fingerprint(&a), fingerprint(&b));

    let spills = a.summary.get("spills").expect("sharded summary has spills");
    let placed = spills.get("placed").and_then(|v| v.as_f64()).unwrap();
    let rejected = spills.get("rejected").and_then(|v| v.as_f64()).unwrap();
    assert!(
        placed > 0.0,
        "an unevenly loaded ring should place some spills: {spills:?}"
    );
    assert!(
        rejected > 0.0,
        "a saturated ring should also reject some spills: {spills:?}"
    );
    // Every settled spill was first offered by a home cell, and every
    // ring rejection is charged to the fleet-wide rejected counter.
    let counters = a.summary.get("counters").expect("merged counters");
    let offered = counters
        .get("cluster.spills_offered")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert_eq!(offered, placed + rejected, "spill settlement must balance");
    assert_eq!(
        rejected, a.stats.rejected as f64,
        "ring-final rejections are the fleet's rejections"
    );
}

#[test]
fn cell_count_clamps_to_fleet_size() {
    // More cells than servers degrades gracefully to one server per
    // cell instead of constructing empty managers.
    let mut cfg = loaded_cfg(ShardingConfig::cells(64));
    cfg.manager.n_servers = 5;
    cfg.trace.arrivals_per_hour = 40.0;
    let r = run_cluster_sim(&cfg);
    assert_eq!(
        r.summary.get("cells").and_then(|v| v.as_f64()),
        Some(5.0),
        "cells must clamp to n_servers"
    );
    assert_eq!(r.server_overcommitment.len(), 5);
}
