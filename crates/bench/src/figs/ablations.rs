//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! * [`r_estimators`] — the three recomputation-cost estimates §4.1
//!   offers (worst-case, sync-time heuristic, DAG-exact): decision
//!   quality (regret vs the empirically best mechanism) across workloads
//!   and deflation conditions.
//! * [`deadline_sweep`] — cascade deadlines trade reclamation
//!   completeness against latency (§5's deflation-operation deadline).
//! * [`memory_mechanisms`] — hot-unplug vs ballooning for guest memory
//!   reclamation (the related-work claim that "ballooning generally
//!   yields inferior performance to hotplug").

use deflate_core::{CascadeConfig, ResourceVector, VmId};
use hypervisor::guest::{GuestConfig, MemoryMechanism};
use hypervisor::{BurstableParams, CreditModel, LatencyModel, Vm, VmPriority};
use simkit::{SimDuration, SimTime};
use spark::workloads::{all_workloads, fig6_event, standard_pool};
use spark::{BspSimulator, DeflationMode, REstimateKind};

use crate::{f1, f3, pct, Table};

/// Compares the three `r` estimators' decision quality: for each DAG
/// workload and deflation condition, the cascade's running time under
/// each estimator, normalized to the better of the two pure mechanisms.
pub fn r_estimators() -> Table {
    let mut t = Table::new(
        "ablation-r",
        "Spark policy regret by recomputation estimator (1.000 = picked the best mechanism)",
        vec![
            "workload",
            "deflation",
            "at progress",
            "WorstCase",
            "SyncHeuristic",
            "DagExact",
        ],
    );
    let estimators = [
        REstimateKind::WorstCase,
        REstimateKind::SyncHeuristic,
        REstimateKind::DagExact,
    ];
    for w in all_workloads() {
        // Training jobs bypass the estimator (always synchronous).
        if matches!(w, spark::SparkWorkload::Training { .. }) {
            continue;
        }
        for frac in [0.25, 0.5] {
            for at in [0.25, 0.5] {
                let mut ev = fig6_event(w.workers(), frac);
                ev.at_progress = at;
                let vm = w.run(DeflationMode::VmLevel, Some(&ev), 7).normalized;
                let selfd = w.run(DeflationMode::SelfDeflation, Some(&ev), 7).normalized;
                let best = vm.min(selfd);
                let mut cells = vec![w.name().to_string(), pct(frac), pct(at)];
                for est in estimators {
                    let r = w
                        .run_with_estimator(DeflationMode::Cascade, Some(&ev), 7, est)
                        .normalized;
                    cells.push(f3(r / best));
                }
                t.row(cells);
            }
        }
    }
    t.expect(
        "all three estimators agree on shuffle-heavy jobs; on K-means \
         the sync heuristic alone stays regret-free — the DAG-exact r is \
         'more correct' but Eqs. 1/3 omit VM-level contention, so its \
         conservatism (like the worst case's) misses self-deflation \
         opportunities. The paper's middle-ground heuristic is the best \
         end-to-end choice, which this table quantifies",
    );
    t
}

/// Sweeps the cascade deadline on a memory-heavy VM: shorter deadlines
/// bound latency but reclaim less.
pub fn deadline_sweep() -> Table {
    let mut t = Table::new(
        "ablation-deadline",
        "Cascade deadline vs reclaimed memory (16 GiB VM, 10 GiB target, busy guest)",
        vec![
            "deadline (s)",
            "reclaimed (MiB)",
            "latency (s)",
            "met target",
        ],
    );
    for deadline_s in [1u64, 2, 5, 10, 20, 60, 120] {
        let spec = ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0);
        let mut vm = Vm::new(VmId(1), spec, VmPriority::Low);
        vm.set_usage(14_000.0, 3.0);
        let cfg = CascadeConfig::VM_LEVEL.with_deadline(SimDuration::from_secs(deadline_s));
        let out = vm.deflate(SimTime::ZERO, &ResourceVector::memory(10_240.0), &cfg);
        t.row(vec![
            deadline_s.to_string(),
            f1(out.total_reclaimed.get(deflate_core::ResourceKind::Memory)),
            f1(out.latency.as_secs_f64()),
            out.met_target().to_string(),
        ]);
    }
    t.expect(
        "reclaimed memory grows monotonically with the deadline and \
         latency never exceeds it — partial deflation is reported \
         honestly and the cascade proceeds to the next level on timeout",
    );
    t
}

/// Hot-unplug vs ballooning for guest-level memory reclamation.
pub fn memory_mechanisms() -> Table {
    let mut t = Table::new(
        "ablation-balloon",
        "Guest memory reclamation mechanism: hot-unplug vs ballooning (10 GiB target)",
        vec![
            "mechanism",
            "reclaimed at guest (MiB)",
            "latency (s)",
            "guest sees resize",
        ],
    );
    for (name, mech) in [
        ("hot-unplug", MemoryMechanism::Hotplug),
        ("balloon", MemoryMechanism::Balloon),
    ] {
        let spec = ResourceVector::new(4.0, 16_384.0, 200.0, 1_000.0);
        let guest_cfg = GuestConfig {
            memory_mechanism: mech,
            ..GuestConfig::default()
        };
        let mut vm = Vm::with_models(
            VmId(1),
            spec,
            VmPriority::Low,
            guest_cfg,
            LatencyModel::default(),
        );
        vm.set_usage(6_144.0, 2.0);
        let out = vm.deflate(
            SimTime::ZERO,
            &ResourceVector::memory(10_240.0),
            &CascadeConfig::VM_LEVEL,
        );
        let resized = vm.view().visible.get(deflate_core::ResourceKind::Memory) < 16_384.0;
        t.row(vec![
            name.to_string(),
            f1(out.os.reclaimed.get(deflate_core::ResourceKind::Memory)),
            f1(out.latency.as_secs_f64()),
            resized.to_string(),
        ]);
    }
    t.expect(
        "ballooning reclaims slightly more (no contiguity constraint) but \
         more slowly, and the guest's visible allocation does not shrink — \
         hot-unplug 'updates the resource allocation observed by the OS \
         and applications' (§3.2.2), which is why the cascade uses it",
    );
    t
}

/// Burstable VMs vs deflatable VMs (§8): CPU delivered to a sustained
/// 4-core workload over 4 hours, as a function of how much of the time
/// the host is actually under pressure.
pub fn burstable_comparison() -> Table {
    let mut t = Table::new(
        "ablation-burstable",
        "CPU core-hours delivered over 4 h of sustained 4-core demand",
        vec![
            "host pressure",
            "burstable (credits)",
            "deflatable (50% under pressure)",
            "advantage",
        ],
    );
    for pressure_frac in [0.0, 0.1, 0.25, 0.5] {
        let step = SimDuration::from_secs(60);
        let minutes = 240u64;
        let pressured_minutes = (minutes as f64 * pressure_frac) as u64;

        let mut burst = CreditModel::new(BurstableParams::default());
        let mut burst_core_h = 0.0;
        let mut defl_core_h = 0.0;
        for minute in 0..minutes {
            // Burstable VMs throttle on credits, pressure or not.
            burst_core_h += burst.step(step, 4.0) / 60.0;
            // Deflatable VMs run full speed except under real pressure
            // (modelled as a contiguous leading window).
            let cores = if minute < pressured_minutes { 2.0 } else { 4.0 };
            defl_core_h += cores / 60.0;
        }
        t.row(vec![
            pct(pressure_frac),
            f1(burst_core_h),
            f1(defl_core_h),
            format!("{:.1}x", defl_core_h / burst_core_h.max(1e-9)),
        ]);
    }
    t.expect(
        "burstable VMs throttle to their baseline once credits drain, regardless of host load; deflation only taxes the VM while real pressure lasts ('deflation is only performed under resource pressure, and not over the entire lifetime of the VM', §8)",
    );
    t
}

/// Speculative execution vs Eq. 1's straggler gate: uneven VM-level
/// deflation with Spark speculation on and off.
///
/// Eq. 1 assumes a stage is gated by the most-deflated VM (`max d`);
/// that holds when speculation is disabled (BigDL's default). With
/// speculation on, stragglers are re-launched on faster workers and the
/// penalty moves toward the mean deflation — narrowing the gap the
/// paper's Spark policy exploits.
pub fn speculation() -> Table {
    let mut t = Table::new(
        "ablation-speculation",
        "ALS under uneven VM-level deflation: normalized time, speculation off/on",
        vec![
            "max d (one VM)",
            "Eq.1 prediction",
            "speculation off",
            "speculation on",
        ],
    );
    for d in [0.2, 0.4, 0.6] {
        let ev = {
            let mut fr = vec![0.1; 8];
            fr[0] = d;
            spark::DeflationEvent {
                at_progress: 0.5,
                fractions: fr,
            }
        };
        let run = |speculation: bool| {
            let w = spark::als();
            let spark::SparkWorkload::Dag { dag, .. } = &w else {
                unreachable!("ALS is a DAG workload")
            };
            let mut pool = standard_pool();
            pool.speculation = speculation;
            let mut sim = BspSimulator::new(dag, pool, 5);
            sim.run(DeflationMode::VmLevel, Some(&ev)).normalized()
        };
        let eq1 = spark::policy::estimate_t_vm(0.5, d);
        t.row(vec![pct(d), f3(eq1), f3(run(false)), f3(run(true))]);
    }
    t.expect(
        "with speculation off, the measured slowdown tracks Eq. 1's          max-d gate; speculation re-runs stragglers elsewhere and pulls          the penalty toward the mean deflation",
    );
    t
}

/// Placement policies on a *heterogeneous* server pool: Fig. 8d found
/// the policies interchangeable on homogeneous servers because deflation
/// absorbs placement mistakes; this ablation checks whether that still
/// holds when server capacities differ 3:1 and cosine fitness has real
/// direction to exploit.
pub fn heterogeneous_placement() -> Table {
    heterogeneous_placement_with(30, simkit::SimDuration::from_hours(12))
}

/// [`heterogeneous_placement`] with explicit scale (shrunk in tests).
pub fn heterogeneous_placement_with(n_servers: usize, horizon: simkit::SimDuration) -> Table {
    use cluster::{run_cluster_sim, ClusterManagerConfig, ClusterSimConfig, TraceConfig};

    let mut t = Table::new(
        "ablation-hetero",
        "Placement policies on homogeneous vs heterogeneous (3:1) pools",
        vec![
            "pool",
            "policy",
            "launched",
            "rejected",
            "P[preempt]",
            "mean overcommit",
        ],
    );
    // 2 pools × 3 policies = 6 independent simulations; run them all at
    // once and emit rows in grid order.
    let grid: Vec<(f64, cluster::PlacementPolicy)> = [0.0, 0.5]
        .into_iter()
        .flat_map(|skew| cluster::PlacementPolicy::ALL.map(|policy| (skew, policy)))
        .collect();
    let results = crate::sweep::parallel_map(grid.clone(), |(skew, policy)| {
        let cfg = ClusterSimConfig {
            sharding: Default::default(),
            manager: ClusterManagerConfig {
                n_servers,
                placement: policy,
                capacity_skew: skew,
                ..ClusterManagerConfig::default()
            },
            trace: TraceConfig {
                // ~2x offered load: the pools must reclaim to admit.
                arrivals_per_hour: 4.0 * n_servers as f64,
                ..TraceConfig::default()
            },
            horizon,
        };
        let r = run_cluster_sim(&cfg);
        crate::record_sim_summary(&r.summary);
        r
    });
    for ((skew, policy), r) in grid.into_iter().zip(&results) {
        t.row(vec![
            if skew == 0.0 {
                "homogeneous"
            } else {
                "3:1 mixed"
            }
            .to_string(),
            policy.name().to_string(),
            r.stats.launched.to_string(),
            r.stats.rejected.to_string(),
            f3(r.preemption_probability),
            pct(r.mean_overcommitment),
        ]);
    }
    t.expect(
        "deflation keeps the policies close even on the mixed pool —          admission and preemption probabilities stay in the same band          across best-fit/first-fit/2-choices — extending Fig. 8d's          homogeneous-pool finding",
    );
    t
}

/// All ablations.
pub fn run() -> Vec<Table> {
    vec![
        r_estimators(),
        deadline_sweep(),
        memory_mechanisms(),
        burstable_comparison(),
        speculation(),
        heterogeneous_placement(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_estimator_regrets_bounded() {
        let t = r_estimators();
        // The sync heuristic and DAG-exact estimator stay within 12 % of
        // the best mechanism everywhere.
        for r in 0..t.rows.len() {
            assert!(t.cell(r, 4) < 1.12, "sync row {r}: {}", t.cell(r, 4));
            assert!(t.cell(r, 5) < 1.12, "exact row {r}: {}", t.cell(r, 5));
        }
        // Worst-case misses at least one self-deflation opportunity
        // (K-means) that the other two catch.
        let kmeans_rows: Vec<usize> = (0..t.rows.len())
            .filter(|r| t.rows[*r][0] == "K-means")
            .collect();
        assert!(!kmeans_rows.is_empty());
        let worst_sum: f64 = kmeans_rows.iter().map(|r| t.cell(*r, 3)).sum();
        let sync_sum: f64 = kmeans_rows.iter().map(|r| t.cell(*r, 4)).sum();
        assert!(
            worst_sum >= sync_sum,
            "worst-case should not beat the heuristic on K-means"
        );
    }

    #[test]
    fn deadline_sweep_monotone() {
        let t = deadline_sweep();
        let reclaimed = t.column(1);
        for w in reclaimed.windows(2) {
            assert!(w[1] + 1e-6 >= w[0], "reclaimed must grow: {reclaimed:?}");
        }
        for r in 0..t.rows.len() {
            assert!(
                t.cell(r, 2) <= t.cell(r, 0) + 1e-3,
                "latency within deadline"
            );
        }
        // The longest deadline meets the target.
        assert_eq!(t.rows.last().expect("rows")[3], "true");
    }

    #[test]
    fn heterogeneous_pool_keeps_policies_in_band() {
        let t = heterogeneous_placement_with(10, simkit::SimDuration::from_hours(5));
        assert_eq!(t.rows.len(), 6);
        // Within each pool kind, admission varies by less than 20%
        // across policies.
        for pool in ["homogeneous", "3:1 mixed"] {
            let launched: Vec<f64> = (0..t.rows.len())
                .filter(|r| t.rows[*r][0] == pool)
                .map(|r| t.cell(r, 2))
                .collect();
            let lo = launched.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = launched.iter().copied().fold(0.0f64, f64::max);
            assert!(hi <= lo * 1.2, "{pool}: {launched:?}");
        }
    }

    #[test]
    fn speculation_narrows_the_straggler_penalty_at_high_skew() {
        let t = speculation();
        // At low skew the 10% duplication overhead can outweigh the
        // straggler gain — speculation is not a free lunch — but at the
        // largest skew it wins clearly.
        let last = t.rows.len() - 1;
        assert!(
            t.cell(last, 2) > t.cell(last, 3) * 1.1,
            "off {} on {}",
            t.cell(last, 2),
            t.cell(last, 3)
        );
        // And the benefit grows with skew.
        let gap_first = t.cell(0, 2) - t.cell(0, 3);
        let gap_last = t.cell(last, 2) - t.cell(last, 3);
        assert!(gap_last > gap_first);
    }

    #[test]
    fn burstable_advantage_grows_as_pressure_shrinks() {
        let t = burstable_comparison();
        let adv: Vec<f64> = (0..t.rows.len())
            .map(|r| {
                t.rows[r][3]
                    .trim_end_matches('x')
                    .parse::<f64>()
                    .expect("numeric advantage")
            })
            .collect();
        // Least pressure (row 0) = largest deflatable advantage.
        for w in adv.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "advantage should shrink: {adv:?}");
        }
        assert!(adv[0] > 2.0, "sustained work crushes credit buckets");
    }

    #[test]
    fn balloon_slower_but_greedier() {
        let t = memory_mechanisms();
        let unplug_mem = t.cell(0, 1);
        let balloon_mem = t.cell(1, 1);
        let unplug_lat = t.cell(0, 2);
        let balloon_lat = t.cell(1, 2);
        assert!(balloon_mem >= unplug_mem, "balloon reclaims ≥ unplug");
        assert!(balloon_lat > unplug_lat, "balloon is slower");
        assert_eq!(t.rows[0][3], "true");
        assert_eq!(t.rows[1][3], "false");
    }
}
