//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate provides the subset of the proptest API that the
//! workspace's property tests actually use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` and `boxed`,
//! * range, tuple, `any::<T>()`, collection-`vec`, and string-pattern
//!   strategies,
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`].
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are *not* shrunk — the failing input is printed as-is. Case
//! generation is deterministic per test name, so failures reproduce.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The items property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a zero-arg
/// `#[test]` that generates `config.cases` random inputs and runs the
/// body against each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                runner.begin_case(case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());
                )*
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
