//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span > 0 {
                rng.below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::seed_from_u64(7);
        let s = vec(0f64..1.0, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = vec(0u32..9, 8);
        assert_eq!(exact.generate(&mut rng).len(), 8);
    }
}
