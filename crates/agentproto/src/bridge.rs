//! Bridges the wire protocol into the cascade: a [`ProtocolAgent`] is an
//! [`ApplicationAgent`] whose `self_deflate` goes over a [`Duplex`] link
//! to a remote [`AgentEndpoint`] — exactly how the paper's local
//! controller reaches the in-VM deflation agents over REST.
//!
//! The round trip is resolved synchronously within the simulated
//! deadline: the request is delivered after the link delay, the remote
//! side processes it (its own latency applies), and the answer either
//! returns before the deadline — the relinquished amount and the true
//! round-trip latency — or the deadline expires and the cascade proceeds
//! with zero application contribution, as §3.2 requires.

use deflate_core::{ApplicationAgent, ReclaimResult, ResourceVector, VmId};
use simkit::{SimDuration, SimTime};

use crate::endpoint::{AgentEndpoint, ControllerEndpoint, RequestOutcome};
use crate::transport::Duplex;

/// An [`ApplicationAgent`] that talks to its real agent over the wire.
pub struct ProtocolAgent {
    vm: VmId,
    link: Duplex,
    controller: ControllerEndpoint,
    remote: AgentEndpoint,
    /// Per-request response deadline.
    pub deadline: SimDuration,
    /// Requests that timed out (for diagnostics).
    pub timeouts: u64,
}

impl ProtocolAgent {
    /// Wires a controller to a remote agent endpoint over `link`.
    pub fn new(vm: VmId, remote: AgentEndpoint, link: Duplex, deadline: SimDuration) -> Self {
        ProtocolAgent {
            vm,
            link,
            controller: ControllerEndpoint::new(),
            remote,
            deadline,
            timeouts: 0,
        }
    }

    /// Diagnostics from the controller side.
    pub fn late_responses(&self) -> u64 {
        self.controller.late_responses
    }
}

impl ApplicationAgent for ProtocolAgent {
    fn self_deflate(&mut self, now: SimTime, target: &ResourceVector) -> ReclaimResult {
        let seq =
            self.controller
                .request_deflation(now, &mut self.link, self.vm, *target, self.deadline);

        // Deliver the request to the remote agent after the link delay;
        // the remote queues its (possibly delayed) response.
        let request_arrives = now + self.link.delay;
        self.remote.poll(request_arrives, &mut self.link);

        // Resolve at the answer's arrival or the deadline, whichever is
        // earlier.
        let deadline_at = now + self.deadline;
        let resolve_at = match self.link.next_delivery_to_controller() {
            Some(t) if t <= deadline_at => t,
            _ => deadline_at.saturating_add(SimDuration::from_micros(1)),
        };
        for outcome in self.controller.poll(resolve_at, &mut self.link) {
            match outcome {
                RequestOutcome::Answered { request, freed } if request.seq == seq => {
                    return ReclaimResult::new(freed, resolve_at.saturating_since(now));
                }
                RequestOutcome::TimedOut { request } if request.seq == seq => {
                    self.timeouts += 1;
                    return ReclaimResult::new(ResourceVector::ZERO, self.deadline);
                }
                _ => {}
            }
        }
        // No outcome at all (e.g. request dropped and deadline not yet
        // reached at resolve_at): treat as a timeout.
        self.timeouts += 1;
        ReclaimResult::new(ResourceVector::ZERO, self.deadline)
    }

    fn reinflate(&mut self, now: SimTime, available: &ResourceVector) {
        self.controller
            .notify_reinflate(now, &mut self.link, self.vm, *available);
        self.remote.poll(now + self.link.delay, &mut self.link);
    }

    fn name(&self) -> &str {
        "protocol"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::AgentPolicy;

    fn target() -> ResourceVector {
        ResourceVector::new(2.0, 8_192.0, 50.0, 100.0)
    }

    #[test]
    fn answered_request_reports_true_latency() {
        let remote = AgentEndpoint::new(
            VmId(1),
            AgentPolicy::Fraction {
                fraction: 0.5,
                delay: SimDuration::from_millis(200),
            },
        );
        let link = Duplex::new(SimDuration::from_millis(50));
        let mut agent = ProtocolAgent::new(VmId(1), remote, link, SimDuration::from_secs(5));
        let r = agent.self_deflate(SimTime::from_secs(10), &target());
        assert!(r.reclaimed.approx_eq(&target().scale(0.5), 1e-9));
        // 50 ms out + 200 ms processing + 50 ms back.
        assert_eq!(r.latency, SimDuration::from_millis(300));
        assert_eq!(agent.timeouts, 0);
    }

    #[test]
    fn silent_remote_times_out_and_cascade_gets_zero() {
        let remote = AgentEndpoint::new(VmId(1), AgentPolicy::Silent);
        let link = Duplex::new(SimDuration::from_millis(10));
        let mut agent = ProtocolAgent::new(VmId(1), remote, link, SimDuration::from_millis(500));
        let r = agent.self_deflate(SimTime::ZERO, &target());
        assert!(r.reclaimed.is_zero());
        assert_eq!(r.latency, SimDuration::from_millis(500));
        assert_eq!(agent.timeouts, 1);
    }

    #[test]
    fn slow_remote_misses_deadline() {
        let remote = AgentEndpoint::new(
            VmId(1),
            AgentPolicy::Fraction {
                fraction: 1.0,
                delay: SimDuration::from_secs(60),
            },
        );
        let link = Duplex::new(SimDuration::from_millis(10));
        let mut agent = ProtocolAgent::new(VmId(1), remote, link, SimDuration::from_secs(2));
        let r = agent.self_deflate(SimTime::ZERO, &target());
        assert!(r.reclaimed.is_zero());
        assert_eq!(agent.timeouts, 1);
    }

    #[test]
    fn reinflate_notifies_remote() {
        let remote = AgentEndpoint::new(VmId(1), AgentPolicy::Silent);
        let link = Duplex::new(SimDuration::from_millis(5));
        let mut agent = ProtocolAgent::new(VmId(1), remote, link, SimDuration::from_secs(1));
        agent.reinflate(SimTime::ZERO, &target());
        assert_eq!(agent.remote.reinflations, vec![target()]);
    }
}
