//! Property tests of the manager's incremental accounting: for *any*
//! sequence of launches (mixed priorities and sizes) and exits, the
//! incrementally-maintained cluster totals must equal a full
//! recomputation over every server and VM, every rejected launch must be
//! state-neutral, and the VM index must stay in lockstep with server
//! contents.

use cluster::{ClusterManager, ClusterManagerConfig, LaunchOutcome, VmRequest};
use deflate_core::{ResourceKind, ResourceVector, VmId};
use proptest::prelude::*;
use simkit::{SimDuration, SimRng, SimTime};

fn small_cluster(n_servers: usize, deflation: bool) -> ClusterManager {
    ClusterManager::new(ClusterManagerConfig {
        n_servers,
        server_capacity: ResourceVector::new(8.0, 32_768.0, 200.0, 400.0),
        deflation_enabled: deflation,
        ..ClusterManagerConfig::default()
    })
}

fn request(id: u64, scale: f64, low: bool) -> VmRequest {
    let spec = ResourceVector::new(4.0, 16_384.0, 100.0, 200.0).scale(scale);
    VmRequest {
        id: VmId(id),
        arrival: SimTime::ZERO,
        lifetime: SimDuration::from_hours(1),
        spec,
        type_name: "prop",
        low_priority: low,
        min_size: if low {
            spec.scale(0.3)
        } else {
            ResourceVector::ZERO
        },
    }
}

/// The O(1) metric accessors recomputed the slow way.
fn recompute(m: &ClusterManager) -> (f64, f64, f64) {
    let mut high = 0.0;
    let mut low_spec = 0.0;
    let mut low_eff = 0.0;
    for vm in m.servers().iter().flat_map(|s| s.vms()) {
        if vm.priority() == hypervisor::VmPriority::High {
            high += vm.spec().get(ResourceKind::Cpu);
        } else {
            low_spec += vm.spec().get(ResourceKind::Cpu);
            low_eff += vm.effective().get(ResourceKind::Cpu);
        }
    }
    (high, low_spec, low_eff)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random launch/exit interleavings keep the incremental totals,
    /// the recomputed totals, and the VM index in agreement — and every
    /// reject leaves the cluster untouched.
    #[test]
    fn incremental_totals_survive_any_op_sequence(
        seed in any::<u64>(),
        n_servers in 2usize..5,
        deflation in any::<bool>(),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut m = small_cluster(n_servers, deflation);
        let mut live: Vec<u64> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..60u64 {
            let now = SimTime::from_secs(step);
            let launch = live.is_empty() || rng.chance(0.6);
            if launch {
                let scale = rng.uniform_range(0.25, 1.5);
                let low = rng.chance(0.7);
                let before: Vec<_> =
                    m.servers().iter().map(|s| s.aggregates()).collect();
                let running = m.running_vms();
                let out = m.launch(now, &request(next_id, scale, low));
                match out {
                    LaunchOutcome::Placed { .. } => {
                        live.push(next_id);
                        live.retain(|id| m.is_running(VmId(*id)));
                    }
                    LaunchOutcome::Rejected => {
                        // A reject must be invisible: no server changed,
                        // no VM appeared or vanished.
                        prop_assert_eq!(m.running_vms(), running);
                        for (s, b) in m.servers().iter().zip(&before) {
                            prop_assert!(
                                s.aggregates().approx_eq(b),
                                "reject mutated server {:?}",
                                s.id()
                            );
                        }
                    }
                }
                next_id += 1;
            } else {
                let pick = rng.index(live.len());
                let id = live.swap_remove(pick);
                prop_assert!(m.exit(now, VmId(id)).is_some());
            }
            // Incremental == recomputed, every step.
            m.assert_consistent();
            let (high, low_spec, low_eff) = recompute(&m);
            prop_assert!((m.high_pri_cpu() - high).abs() < 1e-6);
            prop_assert!((m.low_pri_spec_cpu() - low_spec).abs() < 1e-6);
            prop_assert!((m.low_pri_effective_cpu() - low_eff).abs() < 1e-6);
        }
    }
}
