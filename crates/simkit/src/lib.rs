//! Deterministic discrete-event simulation substrate.
//!
//! `simkit` provides the building blocks used by every other crate in this
//! workspace to simulate cluster behaviour:
//!
//! * [`SimTime`] / [`SimDuration`] — fixed-point simulated time (microsecond
//!   resolution) so runs are exactly reproducible across platforms.
//! * [`EventQueue`] and [`Scheduler`] — a stable-ordered future event list;
//!   ties are broken by insertion sequence so the simulation is deterministic.
//! * [`SimRng`] — a seeded PRNG with the distributions cluster simulations
//!   need (exponential, normal, log-normal, Zipf, Poisson processes),
//!   implemented from first principles to avoid external distribution crates.
//! * [`metrics`] — time-series, time-weighted gauges, counters and histograms
//!   with CSV export, used by the benchmark harness to print paper figures.
//! * [`MetricsRegistry`], [`Span`], [`Observability`] — the unified
//!   observability layer: metrics addressed by hierarchical dotted key,
//!   structured trace spans with per-layer payloads, and JSON/CSV run
//!   summaries ([`json::JsonValue`] is the dependency-free document model).
//!
//! # Examples
//!
//! ```
//! use simkit::{Scheduler, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev {
//!     Tick(u32),
//! }
//!
//! let mut sched = Scheduler::new();
//! sched.after(SimDuration::from_secs(1), Ev::Tick(1));
//! sched.after(SimDuration::from_secs(2), Ev::Tick(2));
//!
//! let mut seen = Vec::new();
//! simkit::run(&mut sched, None, |_s, t, ev| {
//!     let Ev::Tick(n) = ev;
//!     seen.push((t, n));
//! });
//! assert_eq!(seen.len(), 2);
//! assert_eq!(seen[0].0, SimTime::from_secs(1));
//! ```

pub mod event;
pub mod fault;
pub mod hash;
pub mod json;
pub mod metrics;
pub mod observe;
pub mod par;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::{run, run_until, EventQueue, Scheduler};
pub use fault::{AdmissionOverflow, FaultInjector, FaultPlan, ManagerPlan, PartitionPlan};
pub use hash::SeqHash;
pub use json::JsonValue;
pub use metrics::{Counter, Histogram, MetricSet, MetricsRegistry, TimeSeries, TimeWeightedGauge};
pub use observe::Observability;
pub use par::parallel_map_workers;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{AttrValue, Span, TraceEvent, TraceLog};
